//! Pyo+ (IET 2009): TRNG from DRAM command-schedule nondeterminism.
//!
//! Harvests "randomness" from the latency jitter of DRAM accesses that
//! contend with refresh operations (paper Section 8.1). The paper's
//! criticism — which this implementation demonstrates — is that the
//! entropy source is the *processor and memory controller scheduling
//! state*, which is deterministic given the same execution: the output
//! is predictable and even manipulable by an adversary. The tests below
//! show two identical runs produce identical "random" bits.

use dram_sim::commands::CommandKind;
use memctrl::{MemoryController, Result};

/// Command-schedule-jitter TRNG (Pyo+).
#[derive(Debug)]
pub struct CommandScheduleTrng {
    ctrl: MemoryController,
    /// Timing measurements distilled into one output bit. Models the
    /// paper's cost of ~45000 cycles per harvested byte.
    measurements_per_bit: usize,
    refresh_countdown: u64,
    row_toggle: usize,
    bits_emitted: u64,
    device_time_ps: u64,
}

impl CommandScheduleTrng {
    /// Wraps a controller; `measurements_per_bit` defaults to 32.
    pub fn new(ctrl: MemoryController) -> Self {
        CommandScheduleTrng {
            ctrl,
            measurements_per_bit: 32,
            refresh_countdown: 0,
            row_toggle: 0,
            bits_emitted: 0,
            device_time_ps: 0,
        }
    }

    /// Overrides the distillation factor.
    pub fn with_measurements_per_bit(mut self, n: usize) -> Self {
        self.measurements_per_bit = n.max(1);
        self
    }

    /// One timed access: a fresh-activation read racing the refresh
    /// schedule; returns the access latency in clock cycles.
    fn timed_access(&mut self) -> Result<u64> {
        let t = self.ctrl.registers().datasheet();
        // Periodic refresh per tREFI steals slots from demand accesses.
        if self.refresh_countdown == 0 {
            self.ctrl.scheduler();
            // Close everything (banks are closed between our accesses)
            // and refresh.
            let _ = self.ctrl.now_ps();
            self.refresh()?;
            self.refresh_countdown = t.trefi_ps / t.tck_ps;
        }
        let start = self.ctrl.now_ps();
        let row = self.row_toggle;
        self.row_toggle = (self.row_toggle + 1) % 2;
        self.ctrl.read_fresh(0, row, 0)?;
        let elapsed = self.ctrl.now_ps() - start;
        let cycles = elapsed / t.tck_ps;
        self.refresh_countdown = self.refresh_countdown.saturating_sub(cycles.max(1));
        Ok(cycles)
    }

    fn refresh(&mut self) -> Result<()> {
        // Issue a REF through the scheduler (all banks are closed
        // between accesses).
        let mut sched = self.ctrl.scheduler().clone();
        sched.issue(CommandKind::Ref, 0, 0, 0).map(|_| ())?;
        // Account the refresh stall on the real controller.
        let t = self.ctrl.registers().datasheet();
        self.ctrl.advance_ps(t.trfc_ps);
        Ok(())
    }

    /// Generates `n` bits by XOR-distilling access-latency parities.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn generate_bits(&mut self, n: usize) -> Result<Vec<bool>> {
        let t0 = self.ctrl.now_ps();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut bit = false;
            for _ in 0..self.measurements_per_bit {
                let cycles = self.timed_access()?;
                bit ^= cycles & 1 == 1;
            }
            out.push(bit);
        }
        self.bits_emitted += n as u64;
        self.device_time_ps += self.ctrl.now_ps() - t0;
        Ok(out)
    }

    /// Observed throughput, bits per second of device time.
    pub fn throughput_bps(&self) -> f64 {
        if self.device_time_ps == 0 {
            0.0
        } else {
            self.bits_emitted as f64 / (self.device_time_ps as f64 * 1e-12)
        }
    }

    /// Device time to produce a 64-bit value, ps (measured).
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn latency_64bit_ps(&mut self) -> Result<u64> {
        let t0 = self.ctrl.now_ps();
        let _ = self.generate_bits(64)?;
        Ok(self.ctrl.now_ps() - t0)
    }

    /// Consumes the generator, returning the controller.
    pub fn into_controller(self) -> MemoryController {
        self.ctrl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DeviceConfig, Manufacturer};

    fn trng() -> CommandScheduleTrng {
        CommandScheduleTrng::new(MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(3)
                .with_noise_seed(4),
        ))
    }

    #[test]
    fn output_is_deterministic_the_papers_criticism() {
        // Identical controller state -> identical "random" output: the
        // entropy source is not physical, exactly the paper's point.
        let a = trng().generate_bits(256).unwrap();
        let b = trng().generate_bits(256).unwrap();
        assert_eq!(a, b, "command-schedule TRNG output is predictable");
    }

    #[test]
    fn throughput_is_kilobit_to_megabit_scale() {
        let mut t = trng();
        let _ = t.generate_bits(512).unwrap();
        let bps = t.throughput_bps();
        assert!(
            (1e4..1e8).contains(&bps),
            "command-schedule throughput {bps} b/s"
        );
    }

    #[test]
    fn latency_is_orders_of_magnitude_above_drange() {
        let mut t = trng();
        let lat = t.latency_64bit_ps().unwrap();
        // Paper: 18 us for 64 bits vs D-RaNGe's <= 960 ns.
        assert!(lat > 10_000_000, "latency {lat} ps should be > 10 us");
    }

    #[test]
    fn distillation_factor_scales_cost() {
        let mut cheap = trng().with_measurements_per_bit(4);
        let mut costly = trng().with_measurements_per_bit(64);
        let _ = cheap.generate_bits(64).unwrap();
        let _ = costly.generate_bits(64).unwrap();
        assert!(costly.throughput_bps() < cheap.throughput_bps());
    }
}
