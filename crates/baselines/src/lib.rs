//! # trng-baselines — prior DRAM-based TRNGs (paper Section 8, Table 2)
//!
//! Implementations of the four previously proposed DRAM TRNG families
//! the D-RaNGe paper compares against, on the same [`dram_sim`] /
//! [`memctrl`] substrate:
//!
//! | Proposal | Entropy source | Module |
//! |---|---|---|
//! | Pyo+ (IET 2009) | DRAM command-schedule jitter | [`pyo`] |
//! | Keller+ (ISCAS 2014) | Data-retention failures | [`retention_trng`] |
//! | Tehranipoor+ (HOST 2016), Eckert+ (MWSCAS 2017) | Startup values | [`startup_trng`] |
//! | Sutar+ (TECS 2018) | Data-retention failures + SHA-256 | [`retention_trng`] |
//!
//! All baselines report the same [`TrngMetrics`] (64-bit latency,
//! energy per bit, peak throughput, streaming capability, true
//! randomness) so the Table 2 bench can compare them directly with
//! D-RaNGe. The [`sha256`] module is a from-scratch FIPS 180-4
//! implementation used by the Sutar+ post-processing step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combined;
pub mod metrics;
pub mod pyo;
pub mod retention_trng;
pub mod sha256;
pub mod startup_trng;

pub use combined::CombinedTrng;
pub use metrics::TrngMetrics;
pub use pyo::CommandScheduleTrng;
pub use retention_trng::{KellerTrng, SutarTrng};
pub use sha256::Sha256;
pub use startup_trng::StartupTrng;
