//! Machine-readable benchmark reports (`BENCH_harvest.json`).
//!
//! The workspace has no JSON dependency, so this module hand-rolls the
//! one shape the benches need: a flat two-level object mapping section
//! names to `{key: number}` metric maps. Several binaries share one
//! report file — [`BenchReport::update_file`] merges key by key, so
//! `fig8_throughput` and `engine_scaling` can both contribute to a
//! shared `simd` section without the later run clobbering the earlier
//! one's keys. A binary that is the sole author of a section declares
//! it with [`BenchReport::own_section`]; owned sections replace the
//! on-disk section wholesale, so keys a re-run no longer emits (e.g.
//! a changed sweep grid) cannot linger as stale data.

use std::io;
use std::path::{Path, PathBuf};

/// Default location of the shared report file: `$DRANGE_BENCH_REPORT`
/// if set, otherwise `BENCH_harvest.json` in the current directory
/// (the repository root when running `cargo run -p drange-bench`).
pub fn bench_report_path() -> PathBuf {
    std::env::var_os("DRANGE_BENCH_REPORT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_harvest.json"))
}

/// An ordered, two-level `{section: {key: number}}` report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    sections: Vec<(String, Vec<(String, f64)>)>,
    /// Sections this report is the sole author of: replaced wholesale
    /// (not key-merged) when folded over an on-disk report.
    owned: Vec<String>,
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> Self {
        BenchReport::default()
    }

    /// Sets `section.key = value`, replacing any previous value and
    /// creating the section on first use. Insertion order is preserved
    /// in the emitted JSON.
    pub fn set(&mut self, section: &str, key: &str, value: f64) {
        let entries = match self.sections.iter_mut().find(|(s, _)| s == section) {
            Some((_, entries)) => entries,
            None => {
                self.sections.push((section.to_string(), Vec::new()));
                // xtask:allow(no-panic) -- the section was pushed on the line above
                &mut self.sections.last_mut().expect("just pushed").1
            }
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => entries.push((key.to_string(), value)),
        }
    }

    /// Reads `section.key` back, if present.
    pub fn get(&self, section: &str, key: &str) -> Option<f64> {
        self.sections
            .iter()
            .find(|(s, _)| s == section)
            .and_then(|(_, entries)| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| *v)
    }

    /// Declares this report the sole author of `section`: when folded
    /// over an on-disk report, the section is replaced wholesale
    /// instead of key-merged, so keys a re-run no longer emits cannot
    /// linger as stale data (e.g. a sweep whose grid changed).
    pub fn own_section(&mut self, section: &str) {
        if !self.owned.iter().any(|s| s == section) {
            self.owned.push(section.to_string());
        }
    }

    /// Folds `other` into `self`: sections `other` [owns](Self::own_section)
    /// are replaced wholesale; everything else merges key by key —
    /// matching `section.key` entries are overwritten, new keys and new
    /// sections are appended, keys `other` doesn't mention survive. The
    /// key-level default lets binaries share a section (fig8 and
    /// engine_scaling both contribute to `simd`) without the later run
    /// clobbering the earlier one's keys.
    pub fn merge_sections_from(&mut self, other: &BenchReport) {
        for (section, entries) in &other.sections {
            match self.sections.iter_mut().find(|(s, _)| s == section) {
                Some((_, mine)) => {
                    if other.owned.iter().any(|s| s == section) {
                        *mine = entries.clone();
                        continue;
                    }
                    for (key, value) in entries {
                        match mine.iter_mut().find(|(k, _)| k == key) {
                            Some((_, v)) => *v = *value,
                            None => mine.push((key.clone(), *value)),
                        }
                    }
                }
                None => self.sections.push((section.clone(), entries.clone())),
            }
        }
    }

    /// Serializes to pretty-printed JSON. Non-finite values are emitted
    /// as `null` (JSON has no NaN/Infinity).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (si, (section, entries)) in self.sections.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(&escape(section));
            out.push_str("\": {\n");
            for (ki, (key, value)) in entries.iter().enumerate() {
                out.push_str("    \"");
                out.push_str(&escape(key));
                out.push_str("\": ");
                if value.is_finite() {
                    out.push_str(&format!("{value}"));
                } else {
                    out.push_str("null");
                }
                out.push_str(if ki + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(if si + 1 < self.sections.len() {
                "  },\n"
            } else {
                "  }\n"
            });
        }
        out.push_str("}\n");
        out
    }

    /// Parses JSON previously produced by [`BenchReport::to_json`]
    /// (flat two-level object, numeric or null leaves — null leaves are
    /// dropped). Returns `None` on any structural mismatch.
    pub fn from_json(text: &str) -> Option<BenchReport> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        let mut report = BenchReport::new();
        p.skip_ws();
        p.eat('{')?;
        p.skip_ws();
        if p.peek() == Some('}') {
            p.eat('}')?;
            return Some(report);
        }
        loop {
            p.skip_ws();
            let section = p.string()?;
            p.skip_ws();
            p.eat(':')?;
            p.skip_ws();
            p.eat('{')?;
            p.skip_ws();
            if p.peek() == Some('}') {
                p.eat('}')?;
                // Preserve empty sections so merge semantics see them.
                if !report.sections.iter().any(|(s, _)| *s == section) {
                    report.sections.push((section.clone(), Vec::new()));
                }
            } else {
                loop {
                    p.skip_ws();
                    let key = p.string()?;
                    p.skip_ws();
                    p.eat(':')?;
                    p.skip_ws();
                    if let Some(v) = p.number_or_null()? {
                        report.set(&section, &key, v);
                    } else if !report.sections.iter().any(|(s, _)| *s == section) {
                        report.sections.push((section.clone(), Vec::new()));
                    }
                    p.skip_ws();
                    match p.next() {
                        Some(',') => continue,
                        Some('}') => break,
                        _ => return None,
                    }
                }
            }
            p.skip_ws();
            match p.next() {
                Some(',') => continue,
                Some('}') => break,
                _ => return None,
            }
        }
        p.skip_ws();
        if p.pos == p.chars.len() {
            Some(report)
        } else {
            None
        }
    }

    /// Merges this report's sections over whatever `path` already holds
    /// (unparseable or missing files are treated as empty) and writes
    /// the result back.
    ///
    /// # Errors
    ///
    /// Propagates filesystem write errors.
    pub fn update_file(&self, path: &Path) -> io::Result<()> {
        let mut merged = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| BenchReport::from_json(&text))
            .unwrap_or_default();
        merged.merge_sections_from(self);
        std::fs::write(path, merged.to_json())
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: char) -> Option<()> {
        if self.next()? == want {
            Some(())
        } else {
            None
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                '"' => return Some(out),
                '\\' => match self.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + self.next()?.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    /// `Some(Some(v))` for a number, `Some(None)` for `null`, `None`
    /// for anything else.
    fn number_or_null(&mut self) -> Option<Option<f64>> {
        if self.peek() == Some('n') {
            for want in ['n', 'u', 'l', 'l'] {
                self.eat(want)?;
            }
            return Some(None);
        }
        let start = self.pos;
        while matches!(self.peek(), Some('0'..='9' | '-' | '+' | '.' | 'e' | 'E')) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().ok().map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_order() {
        let mut r = BenchReport::new();
        r.set("fig8", "fast_bits_per_sec", 2.5e8);
        r.set("fig8", "speedup", 7.0);
        r.set("engine", "cache_hit_rate", 0.93);
        r.set("fig8", "speedup", 8.0); // overwrite
        assert_eq!(r.get("fig8", "speedup"), Some(8.0));
        assert_eq!(r.get("engine", "cache_hit_rate"), Some(0.93));
        assert_eq!(r.get("engine", "missing"), None);
        assert_eq!(r.get("nope", "x"), None);
        let json = r.to_json();
        let fig8_at = json.find("fig8").unwrap();
        let engine_at = json.find("engine").unwrap();
        assert!(fig8_at < engine_at, "insertion order preserved:\n{json}");
    }

    #[test]
    fn json_round_trips() {
        let mut r = BenchReport::new();
        r.set("fig8_throughput", "slow_bits_per_sec", 1.25e7);
        r.set("fig8_throughput", "fast_bits_per_sec", 2.5e8);
        r.set("fig8_throughput", "ns_per_read", 43.21);
        r.set("engine_scaling", "bits_per_sec", 9.5e7);
        let back = BenchReport::from_json(&r.to_json()).expect("own output parses");
        assert_eq!(back, r);
    }

    #[test]
    fn non_finite_becomes_null_and_is_dropped_on_parse() {
        let mut r = BenchReport::new();
        r.set("s", "bad", f64::NAN);
        r.set("s", "good", 1.0);
        let json = r.to_json();
        assert!(json.contains("null"), "{json}");
        let back = BenchReport::from_json(&json).expect("parses");
        assert_eq!(back.get("s", "bad"), None);
        assert_eq!(back.get("s", "good"), Some(1.0));
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in ["", "{", "[1,2]", "{\"a\": 1}", "{\"a\": {\"b\": }}", "x{}"] {
            assert!(BenchReport::from_json(bad).is_none(), "accepted {bad:?}");
        }
        assert_eq!(
            BenchReport::from_json("{}"),
            Some(BenchReport::new()),
            "empty object is a valid empty report"
        );
    }

    #[test]
    fn merge_overrides_matching_keys_and_keeps_others() {
        let mut old = BenchReport::new();
        old.set("fig8_throughput", "speedup", 1.0);
        old.set("engine_scaling", "bits_per_sec", 5.0);
        let mut new = BenchReport::new();
        new.set("fig8_throughput", "speedup", 9.0);
        old.merge_sections_from(&new);
        assert_eq!(old.get("fig8_throughput", "speedup"), Some(9.0));
        assert_eq!(old.get("engine_scaling", "bits_per_sec"), Some(5.0));
    }

    #[test]
    fn owned_sections_replace_wholesale() {
        // A sweep whose grid changed must not leave the old grid's
        // keys behind when the binary owns the section.
        let mut old = BenchReport::new();
        old.set("engine_scaling", "workers_3_device_bits_per_sec", 1.0);
        old.set("engine_scaling", "bits_per_sec", 2.0);
        old.set("server_load", "req_per_s", 9.0);
        let mut new = BenchReport::new();
        new.set("engine_scaling", "workers_12_device_bits_per_sec", 5.0);
        new.own_section("engine_scaling");
        old.merge_sections_from(&new);
        assert_eq!(
            old.get("engine_scaling", "workers_3_device_bits_per_sec"),
            None
        );
        assert_eq!(old.get("engine_scaling", "bits_per_sec"), None);
        assert_eq!(
            old.get("engine_scaling", "workers_12_device_bits_per_sec"),
            Some(5.0)
        );
        assert_eq!(old.get("server_load", "req_per_s"), Some(9.0));
    }

    #[test]
    fn merge_is_key_level_within_a_shared_section() {
        // fig8 and engine_scaling both write the `simd` section; the
        // later run must not clobber the earlier run's keys.
        let mut old = BenchReport::new();
        old.set("simd", "engine_lane_utilization", 0.9);
        old.set("simd", "speedup", 1.0);
        let mut new = BenchReport::new();
        new.set("simd", "speedup", 14.7);
        new.set("simd", "lane_utilization", 0.97);
        old.merge_sections_from(&new);
        assert_eq!(old.get("simd", "engine_lane_utilization"), Some(0.9));
        assert_eq!(old.get("simd", "speedup"), Some(14.7));
        assert_eq!(old.get("simd", "lane_utilization"), Some(0.97));
    }

    #[test]
    fn update_file_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("drange-bench-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_harvest.json");
        let _ = std::fs::remove_file(&path);

        let mut a = BenchReport::new();
        a.set("fig8_throughput", "speedup", 6.5);
        a.update_file(&path).expect("first write");
        let mut b = BenchReport::new();
        b.set("engine_scaling", "cache_hit_rate", 0.97);
        b.update_file(&path).expect("merge write");

        let text = std::fs::read_to_string(&path).expect("file exists");
        let merged = BenchReport::from_json(&text).expect("parses");
        assert_eq!(merged.get("fig8_throughput", "speedup"), Some(6.5));
        assert_eq!(merged.get("engine_scaling", "cache_hit_rate"), Some(0.97));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn update_file_tolerates_corrupted_existing_report() {
        let dir = std::env::temp_dir().join(format!("drange-bench-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_harvest.json");

        // Truncated, non-JSON, and binary junk: each must be treated as
        // an empty report — the new sections are written out and the
        // file is valid JSON again afterwards.
        for junk in [
            "{\"fig8_throughput\": {\"speedup\"",
            "not json at all",
            "\u{0}\u{1}\u{2}\u{ff}",
        ] {
            std::fs::write(&path, junk).expect("seed corruption");
            let mut r = BenchReport::new();
            r.set("engine_scaling", "bits_per_sec", 4.2e7);
            r.update_file(&path).expect("overwrite corrupted file");
            let text = std::fs::read_to_string(&path).expect("file exists");
            let back = BenchReport::from_json(&text).expect("file is valid JSON again");
            assert_eq!(back.get("engine_scaling", "bits_per_sec"), Some(4.2e7));
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn update_file_keeps_parseable_sections_of_a_partial_report() {
        let dir = std::env::temp_dir().join(format!("drange-bench-partial-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_harvest.json");

        // A well-formed report with a null leaf (e.g. a NaN metric from
        // an earlier run) still merges: the null is dropped, the other
        // sections survive the round trip.
        std::fs::write(
            &path,
            "{\n  \"fig8_throughput\": {\"speedup\": 6.5, \"bad\": null},\n  \"old\": {}\n}\n",
        )
        .expect("seed partial report");
        let mut r = BenchReport::new();
        r.set("engine_scaling", "cache_hit_rate", 0.97);
        r.update_file(&path).expect("merge write");
        let text = std::fs::read_to_string(&path).expect("file exists");
        let back = BenchReport::from_json(&text).expect("parses");
        assert_eq!(back.get("fig8_throughput", "speedup"), Some(6.5));
        assert_eq!(back.get("fig8_throughput", "bad"), None);
        assert_eq!(back.get("engine_scaling", "cache_hit_rate"), Some(0.97));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn update_file_propagates_unwritable_destination() {
        // The destination is a directory: the write must surface an
        // io::Error instead of panicking (the bench bins log and
        // continue).
        let dir = std::env::temp_dir().join(format!("drange-bench-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut r = BenchReport::new();
        r.set("s", "k", 1.0);
        assert!(r.update_file(&dir).is_err());
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn escaped_keys_survive() {
        let mut r = BenchReport::new();
        r.set("se\"ct", "k\\ey", 1.0);
        let back = BenchReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back.get("se\"ct", "k\\ey"), Some(1.0));
    }
}
