//! DIEHARD-style battery on D-RaNGe output — the paper names DIEHARD
//! as the alternative validation suite (Section 2.2); this bench runs
//! the five-test battery on a multi-megabit aggregated stream.

use dram_sim::Manufacturer;
use drange_bench::{pipeline, Scale};
use drange_core::{DRange, DRangeConfig};
use nist_sts::{diehard, Bits};

fn main() {
    let scale = Scale::from_args();
    let stream_bits = scale.pick(4_200_000, 12_000_000);
    println!("== DIEHARD-style battery on D-RaNGe output ==\n");

    for m in Manufacturer::ALL {
        let (ctrl, catalog) = pipeline(
            dram_sim::DeviceConfig::new(m)
                .with_seed(0xD1E + m as u64)
                .with_noise_seed(m as u64),
            8,
            scale.pick(256, 1024),
            30,
            1000,
        );
        if catalog.is_empty() {
            continue;
        }
        let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
        let raw = trng.bits(stream_bits).expect("bits");
        let bits = Bits::from_bools(raw.into_iter());
        println!("manufacturer {m} ({} bits):", stream_bits);
        match diehard::battery(&bits) {
            Ok(results) => {
                for r in &results {
                    println!(
                        "  {:<30} p = {:.4}  {}",
                        r.name(),
                        r.min_p(),
                        if r.passed(1e-4) { "PASS" } else { "FAIL" }
                    );
                }
            }
            Err(e) => println!("  battery not applicable: {e}"),
        }
        println!();
    }
    println!("paper context: \"TRNGs are usually validated using statistical tests");
    println!("such as NIST or DIEHARD\" (Section 2.2)");
}
