//! Section 7.3 — energy per random bit.
//!
//! The paper feeds Ramulator traces of Algorithm 2 to DRAMPower,
//! subtracts idle energy, and reports 4.4 nJ per random bit. This bench
//! records the sampling command trace and applies the same accounting
//! with the LPDDR4 energy model.

use dram_sim::{EnergyModel, Manufacturer};
use drange_bench::{fleet, pipeline, Scale};
use drange_core::{DRange, DRangeConfig};

fn main() {
    let scale = Scale::from_args();
    let iterations = scale.pick(1000, 10_000);
    println!("== Section 7.3: energy per random bit ==\n");

    let energy = EnergyModel::lpddr4();
    let mut results = Vec::new();
    for (m_idx, m) in Manufacturer::ALL.into_iter().enumerate() {
        for config in fleet(m, scale.pick(1, 3), 900 + m_idx as u64) {
            let (mut ctrl, catalog) = pipeline(config, 8, scale.pick(256, 1024), 30, 1000);
            if catalog.is_empty() {
                continue;
            }
            ctrl.start_recording();
            let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
            let mut bits = 0u64;
            for _ in 0..iterations {
                bits += trng.sample_once().expect("sample") as u64;
            }
            let mut ctrl = trng.into_controller();
            let trace = ctrl.stop_recording();
            let nj = energy.nj_per_bit(&trace, bits.max(1));
            println!(
                "manufacturer {m}: {:>7} bits over {:>9} commands -> {nj:.2} nJ/bit",
                bits,
                trace.len()
            );
            results.push(nj);
        }
    }
    let avg = results.iter().sum::<f64>() / results.len().max(1) as f64;
    println!("\naverage energy: {avg:.2} nJ/bit");
    println!("paper: 4.4 nJ/bit (Ramulator + DRAMPower, idle energy subtracted)");
}
