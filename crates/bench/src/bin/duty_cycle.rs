//! Duty-cycle ablation (Section 7.3 "Low System Interference"): how
//! the split between reduced-tRCD sampling windows and default-tRCD
//! demand windows trades TRNG throughput against application latency,
//! simulated at the command level with demand priority.

use dram_sim::TimingParams;
use drange_bench::Scale;
use memctrl::arbiter::{demand_rate_per_us, simulate, ArbiterConfig};
use memctrl::workloads::spec2006_suite;

fn main() {
    let scale = Scale::from_args();
    let duration_ps = scale.pick(50_000_000, 500_000_000);
    println!("== Duty-cycle ablation: TRNG windows vs demand latency ==\n");
    let timing = TimingParams::lpddr4_3200();

    println!("window split sweep (workload: gcc-class, 10 req/us):");
    println!(
        "{:>18} {:>12} {:>16} {:>14}",
        "sample:demand", "TRNG Mb/s", "mean lat (ns)", "p95 lat (ns)"
    );
    let total_window = 4_000_000u64;
    for pct in [0u64, 25, 50, 75, 100] {
        let sample = total_window * pct / 100;
        let config = ArbiterConfig {
            duration_ps,
            sample_window_ps: sample,
            demand_window_ps: total_window - sample,
            requests_per_us: 10.0,
            ..ArbiterConfig::default()
        };
        let r = simulate(timing, 10_000, &config).expect("arbiter simulation");
        println!(
            "{:>15}:{:<3} {:>12.2} {:>16.1} {:>14.1}",
            pct,
            100 - pct,
            r.trng_bps / 1e6,
            r.mean_demand_latency_ps / 1e3,
            r.p95_demand_latency_ps as f64 / 1e3
        );
    }

    println!("\nper-workload TRNG harvest with a 50:50 duty cycle:");
    println!(
        "{:>12} {:>8} {:>12} {:>16}",
        "workload", "MPKI", "TRNG Mb/s", "mean lat (ns)"
    );
    for w in spec2006_suite() {
        let config = ArbiterConfig {
            duration_ps,
            requests_per_us: demand_rate_per_us(&w),
            row_hit_rate: w.row_hit_rate,
            ..ArbiterConfig::default()
        };
        let r = simulate(timing, 10_000, &config).expect("arbiter simulation");
        println!(
            "{:>12} {:>8.1} {:>12.2} {:>16.1}",
            w.name,
            w.mpki,
            r.trng_bps / 1e6,
            r.mean_demand_latency_ps / 1e3
        );
    }
    println!("\nshape: TRNG throughput rises with the sampling-window share and falls");
    println!("with workload memory intensity; demand latency stays near-flat because");
    println!("demand has strict priority (the paper's 'no significant impact')");
}
