//! DRBG throughput — the `fast` conditioning tier vs raw harvest serve.
//!
//! Boots one [`drange_core::RandomnessService`] over PRNG-backed
//! harvest sources and measures, over the same wall-clock window and
//! the same request size:
//!
//! * **raw** — the `true` tier: REQUEST/RECEIVE through the engine
//!   pool, rate-bound by harvest throughput;
//! * **fast** — the conditioning tier: synchronous per-shard ChaCha20
//!   generates, reseeded from the pool on the interval (DESIGN.md
//!   §5k), single-threaded and multi-threaded (one client per shard).
//!
//! Writes the `drbg` section of `BENCH_harvest.json`; the bench gate
//! (`cargo xtask bench-gate`) holds `fast_serve_mbps` to the committed
//! baseline and enforces the tier split `fast_serve_mbps >=
//! 10 x raw_serve_mbps`.
//!
//! ```sh
//! cargo run -p drange-bench --release --bin drbg_throughput [--full]
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use drange_bench::{bench_report_path, BenchReport, Scale};
use drange_core::{RandomnessService, ServiceConfig};
use drange_serve::source::PrngHarvestSource;

/// Request size for every tier: large enough to amortize per-call
/// overhead, small enough to stay under the DRBG per-call cap.
const CHUNK_BYTES: usize = 16 * 1024;

fn service() -> Arc<RandomnessService> {
    let sources: Vec<PrngHarvestSource> = (0..4)
        .map(|i| PrngHarvestSource::new(0xD4B6_0000 + i))
        .collect();
    Arc::new(
        RandomnessService::with_sources(
            sources,
            ServiceConfig {
                queue_capacity: 1 << 21,
                low_watermark: 1 << 17,
                min_entropy: 0.9,
                ..ServiceConfig::default()
            },
        )
        .expect("prng service"),
    )
}

/// Serves `CHUNK_BYTES` requests through `serve_one` until the window
/// closes; returns the tier's sustained Mbit/s.
fn measure(window: Duration, mut serve_one: impl FnMut() -> usize) -> f64 {
    let t0 = Instant::now();
    let mut bytes = 0usize;
    while t0.elapsed() < window {
        bytes += serve_one();
    }
    bytes as f64 * 8.0 / 1e6 / t0.elapsed().as_secs_f64()
}

fn main() {
    let scale = Scale::from_args();
    let window = scale.pick(Duration::from_millis(800), Duration::from_secs(4));
    let s = service();
    let shards = s
        .drbg_stats()
        .map(|st| st.shards)
        .expect("conditioning tier on by default");

    println!("drbg_throughput: {CHUNK_BYTES}-byte requests, {window:?} per tier, {shards} shards");

    // Warm both tiers so neither pays first-touch costs in its window.
    let _ = s.generate_fast(CHUNK_BYTES).expect("fast warmup");
    let warm = s.request(CHUNK_BYTES).expect("raw warmup request");
    let _ = s.wait_receive(warm).expect("raw warmup receive");

    let raw_mbps = measure(window, || {
        let id = s.request(CHUNK_BYTES).expect("raw request");
        s.wait_receive(id).expect("raw receive").len()
    });
    println!("  raw  (true tier)    {raw_mbps:10.1} Mbit/s");

    let fast_mbps = measure(window, || {
        s.generate_fast(CHUNK_BYTES).expect("fast generate").len()
    });
    println!("  fast (1 thread)     {fast_mbps:10.1} Mbit/s");

    // One client per shard: the farm's round-robin spreads them across
    // shard mutexes, so this is the tier's aggregate ceiling.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..shards)
        .map(|_| {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut bytes = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    bytes += s.generate_fast(CHUNK_BYTES).expect("fast generate").len();
                }
                bytes
            })
        })
        .collect();
    let t0 = Instant::now();
    thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let total: usize = clients
        .into_iter()
        .map(|c| c.join().expect("fast client"))
        .sum();
    let fast_mt_mbps = total as f64 * 8.0 / 1e6 / t0.elapsed().as_secs_f64();
    println!("  fast ({shards} threads)    {fast_mt_mbps:10.1} Mbit/s");

    let speedup = fast_mbps / raw_mbps.max(f64::MIN_POSITIVE);
    println!("  fast/raw speedup    {speedup:10.1}x");

    let stats = s.drbg_stats().expect("drbg stats");
    println!(
        "  reseeds {} / credited {} bits / blocked {}",
        stats.reseeds,
        stats.entropy_credited_bits,
        stats.reseeds_blocked_health + stats.reseeds_blocked_starved
    );

    let mut report = BenchReport::new();
    // Sole author of its section: wholesale replacement on merge.
    report.own_section("drbg");
    report.set("drbg", "raw_serve_mbps", raw_mbps);
    report.set("drbg", "fast_serve_mbps", fast_mbps);
    report.set("drbg", "fast_mt_serve_mbps", fast_mt_mbps);
    report.set("drbg", "speedup", speedup);
    report.set("drbg", "shards", shards as f64);
    report.set("drbg", "reseeds", stats.reseeds as f64);
    report.set(
        "drbg",
        "entropy_credited_bits",
        stats.entropy_credited_bits as f64,
    );
    let path = bench_report_path();
    match report.update_file(&path) {
        Ok(()) => println!("\nwrote section `drbg` to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
