//! Per-chip tRCD calibration curves — an ablation of the sampling-tRCD
//! choice the paper leaves to the implementation (its empirical
//! inducible range is 6-13 ns; which point maximizes RNG-cell yield is
//! chip-specific).

use dram_sim::Manufacturer;
use drange_bench::{bar, fleet, Scale};
use drange_core::calibrate::{default_grid, sweep};
use drange_core::ProfileSpec;
use memctrl::MemoryController;

fn main() {
    let scale = Scale::from_args();
    let iterations = scale.pick(20, 100);
    let rows = scale.pick(192, 1024);
    println!("== tRCD calibration: 40-60% band population vs sampling tRCD ==\n");

    for m in Manufacturer::ALL {
        for (i, config) in fleet(m, scale.pick(1, 3), 0xCA1 + m as u64)
            .into_iter()
            .enumerate()
        {
            let mut ctrl = MemoryController::from_config(config);
            let region = ProfileSpec {
                rows: 0..rows,
                ..ProfileSpec::default()
            }
            .with_iterations(iterations);
            let cal = sweep(&mut ctrl, &region, &default_grid()).expect("sweep");
            let max_band = cal
                .points
                .iter()
                .map(|p| p.band_cells)
                .max()
                .unwrap_or(1)
                .max(1);
            println!("manufacturer {m}, device {i}:");
            for p in &cal.points {
                println!(
                    "  {:>5.1} ns: {:>6} failing, {:>5} in band  {}",
                    p.trcd_ns,
                    p.failing_cells,
                    p.band_cells,
                    bar(p.band_cells as f64 / max_band as f64, 30)
                );
            }
            println!(
                "  best sampling tRCD: {:.1} ns; failures vanish above {:.1} ns\n",
                cal.best_trcd_ns().expect("nonempty sweep"),
                cal.max_failing_trcd_ns().unwrap_or(f64::NAN)
            );
        }
    }
    println!("shape: the band population peaks inside the 6-13 ns inducible range and");
    println!("the peak location varies per chip — calibrate per device, as the library does");
}
