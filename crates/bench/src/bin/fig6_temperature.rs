//! Figure 6 — effect of temperature on activation-failure probability.
//!
//! Measures each failing cell's F_prob at T and T+5 °C across the
//! 55-70 °C sweep and reports, for F_prob buckets at T, the
//! distribution of F_prob at T+5 — the paper's box-and-whiskers
//! scatter. The expected shape: the mass sits above the x = y line
//! (failures increase with temperature), with manufacturer A tightest
//! and fewer than ~25 % of points below the line.

use dram_sim::{Celsius, DeviceConfig, Manufacturer};
use drange_bench::{box_stats, Scale};
use drange_core::{FailureProfile, ProfileSpec, Profiler};
use memctrl::MemoryController;

fn profile_at(
    ctrl: &mut MemoryController,
    t: Celsius,
    iterations: usize,
    rows: usize,
) -> FailureProfile {
    ctrl.device_mut().set_temperature(t);
    Profiler::new(ctrl)
        .run(
            ProfileSpec {
                rows: 0..rows,
                ..ProfileSpec::default()
            }
            .with_iterations(iterations),
        )
        .expect("profiling succeeds")
}

fn main() {
    let scale = Scale::from_args();
    let iterations = scale.pick(40, 100);
    let rows = scale.pick(384, 1024);
    println!("== Figure 6: temperature effect on F_prob ==");
    println!("{iterations} iterations per temperature, rows 0..{rows}, sweep 55-70 C\n");

    for m in Manufacturer::ALL {
        let mut ctrl =
            MemoryController::from_config(DeviceConfig::new(m).with_seed(666).with_noise_seed(13));
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for t in [55.0, 60.0, 65.0] {
            let base = profile_at(&mut ctrl, Celsius(t), iterations, rows);
            let hot = profile_at(&mut ctrl, Celsius(t + 5.0), iterations, rows);
            for cell in base.failing_cells() {
                pairs.push((base.fprob(cell), hot.fprob(cell)));
            }
        }
        let below = pairs.iter().filter(|(a, b)| b < a).count();
        let frac_below = below as f64 / pairs.len().max(1) as f64;
        println!(
            "manufacturer {m}: {} (cell, T, T+5) points; {:.1}% below x=y",
            pairs.len(),
            frac_below * 100.0
        );
        println!("  F_prob@T bucket -> F_prob@T+5 distribution:");
        for bucket in 0..5 {
            let lo = bucket as f64 * 0.2;
            let hi = lo + 0.2;
            let ys: Vec<f64> = pairs
                .iter()
                .filter(|(a, _)| *a >= lo && *a < hi)
                .map(|&(_, b)| b)
                .collect();
            if ys.is_empty() {
                continue;
            }
            let s = box_stats(&ys);
            println!(
                "  [{lo:.1},{hi:.1}): n={:<5} {} {}",
                ys.len(),
                s,
                if s.median >= (lo + hi) / 2.0 {
                    "(above x=y)"
                } else {
                    ""
                }
            );
        }
        // Mean delta: the headline direction.
        let mean_delta: f64 =
            pairs.iter().map(|(a, b)| b - a).sum::<f64>() / pairs.len().max(1) as f64;
        println!("  mean delta F_prob per +5 C: {mean_delta:+.4}\n");
    }
    println!("paper shape: +5 C raises F_prob on average; < 25% of points fall below");
    println!("x = y; manufacturer A correlates tightest, B/C spread wider");
}
