//! Server load — `drange-serve` under 1k+ concurrent HTTP clients.
//!
//! Boots an in-process [`drange_serve::Server`] over a PRNG-backed
//! engine (so the measurement is the *server* — parsing, coalescing,
//! queueing — not the simulated DRAM), then hammers it with keep-alive
//! clients each looping `GET /random?bytes=32` for a fixed window.
//! Reports sustained req/s and exact client-observed latency
//! percentiles (p50/p95/p99), and writes them into the `server_load`
//! section of `BENCH_harvest.json`.
//!
//! ```sh
//! cargo run -p drange-bench --release --bin server_load [--full]
//! ```
//!
//! Quick runs 1024 clients for ~3 s; `--full` runs 2048 clients for
//! ~10 s.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use drange_bench::{bench_report_path, BenchReport, Scale};
use drange_core::telemetry::MetricsRegistry;
use drange_core::{RandomnessService, ServiceConfig};
use drange_serve::source::PrngHarvestSource;
use drange_serve::{Server, ServerConfig};

const REQUEST: &[u8] = b"GET /random?bytes=32 HTTP/1.1\r\nHost: bench\r\n\r\n";

/// Per-client tallies.
#[derive(Debug, Default)]
struct ClientOutcome {
    requests: u64,
    served_503: u64,
    errors: u64,
    latencies_ns: Vec<u64>,
}

/// One keep-alive client looping requests until `stop` flips.
fn client_loop(addr: SocketAddr, stop: &AtomicBool) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    'reconnect: while !stop.load(Ordering::Relaxed) {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            out.errors += 1;
            thread::sleep(Duration::from_millis(1));
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_nodelay(true);
        while !stop.load(Ordering::Relaxed) {
            let t0 = Instant::now();
            if stream.write_all(REQUEST).is_err() {
                continue 'reconnect;
            }
            match read_one_response(&mut stream) {
                Some(status) => {
                    out.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                    out.requests += 1;
                    if status == 503 {
                        out.served_503 += 1;
                    } else if status != 200 {
                        out.errors += 1;
                    }
                }
                None => {
                    out.errors += 1;
                    continue 'reconnect;
                }
            }
        }
    }
    out
}

/// Reads one response, returning its status code (None on transport
/// failure). Minimal but correct Content-Length framing so keep-alive
/// reuse stays in sync.
fn read_one_response(stream: &mut TcpStream) -> Option<u16> {
    let mut buf = Vec::with_capacity(256);
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let status: u16 = head.split_ascii_whitespace().nth(1)?.parse().ok()?;
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut have = buf.len() - head_end;
    while have < content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => have += n,
        }
    }
    Some(status)
}

/// Exact percentile over a sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let scale = Scale::from_args();
    let clients: usize = scale.pick(1024, 2048);
    let duration = scale.pick(Duration::from_secs(3), Duration::from_secs(10));
    let worker_threads: usize = scale.pick(16, 32);

    let sources: Vec<PrngHarvestSource> = (0..4)
        .map(|i| PrngHarvestSource::new(0x5EED_0000 + i))
        .collect();
    let registry = MetricsRegistry::new();
    let service = Arc::new(
        RandomnessService::with_sources_telemetry(
            sources,
            ServiceConfig {
                queue_capacity: 1 << 20,
                low_watermark: 1 << 16,
                min_entropy: 0.9,
                ..ServiceConfig::default()
            },
            Some(&registry),
        )
        .expect("prng service must spawn"),
    );
    let server = Server::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        Arc::clone(&service),
        registry,
        ServerConfig {
            worker_threads,
            connection_backlog: clients,
            keep_alive: Duration::from_secs(30),
            fetch_timeout: Duration::from_millis(500),
            max_pending_requests: 1 << 14,
            ..ServerConfig::default()
        },
    )
    .expect("bind load server");
    let addr = server.local_addr();
    println!(
        "server_load: {clients} clients x {duration:?} against {addr} ({worker_threads} workers)"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let stop = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .stack_size(128 * 1024)
            .spawn(move || client_loop(addr, &stop))
            .expect("spawn client thread");
        handles.push(handle);
    }

    let t0 = Instant::now();
    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut total = ClientOutcome::default();
    for handle in handles {
        let out = handle.join().expect("client thread");
        total.requests += out.requests;
        total.served_503 += out.served_503;
        total.errors += out.errors;
        total.latencies_ns.extend(out.latencies_ns);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    server.shutdown();
    assert_eq!(
        service.outstanding_requests(),
        0,
        "load run must not leak request ids"
    );

    total.latencies_ns.sort_unstable();
    let p50 = percentile(&total.latencies_ns, 0.50);
    let p95 = percentile(&total.latencies_ns, 0.95);
    let p99 = percentile(&total.latencies_ns, 0.99);
    let req_per_s = total.requests as f64 / elapsed;

    println!("\n  sustained clients   {clients}");
    println!("  wall time           {elapsed:.2} s");
    println!(
        "  requests served     {} ({:.0} req/s)",
        total.requests, req_per_s
    );
    println!("  503 underruns       {}", total.served_503);
    println!("  transport errors    {}", total.errors);
    println!("  latency p50         {:.3} ms", p50 as f64 / 1e6);
    println!("  latency p95         {:.3} ms", p95 as f64 / 1e6);
    println!("  latency p99         {:.3} ms", p99 as f64 / 1e6);

    let mut report = BenchReport::new();
    // Sole author of its section: wholesale replacement on merge.
    report.own_section("server_load");
    report.set("server_load", "concurrent_clients", clients as f64);
    report.set("server_load", "duration_s", elapsed);
    report.set("server_load", "requests", total.requests as f64);
    report.set("server_load", "req_per_s", req_per_s);
    report.set("server_load", "rejected_503", total.served_503 as f64);
    report.set("server_load", "transport_errors", total.errors as f64);
    report.set("server_load", "latency_p50_ns", p50 as f64);
    report.set("server_load", "latency_p95_ns", p95 as f64);
    report.set("server_load", "latency_p99_ns", p99 as f64);
    let path = bench_report_path();
    match report.update_file(&path) {
        Ok(()) => println!("\nwrote section `server_load` to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
