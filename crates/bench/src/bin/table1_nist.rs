//! Table 1 — NIST SP 800-22 results for D-RaNGe bitstreams.
//!
//! Following the paper's method (Section 7.1): identify RNG cells, then
//! sample each selected RNG cell ~one million times to build per-cell
//! megabit bitstreams, and run all 15 NIST tests at α = 0.0001 on each
//! stream. The table reports the average p-value per test across
//! streams, plus the minimum per-cell binary Shannon entropy
//! (paper: 0.9507).

use dram_sim::Manufacturer;
use drange_bench::{fleet, pipeline, Scale};
use drange_core::entropy::binary_entropy;
use nist_sts::{Bits, NistSuite, StsError};

fn main() {
    let scale = Scale::from_args();
    let stream_bits: usize = 1_100_000;
    let devices_per_mfr = scale.pick(1, 4);
    let cells_per_device = scale.pick(2, 4);
    println!("== Table 1: NIST statistical test suite on D-RaNGe output ==");
    println!(
        "{devices_per_mfr} device(s) per manufacturer, {cells_per_device} RNG cells per device, {stream_bits} bits per cell stream, alpha = 1e-4\n"
    );

    let mut per_test_p: std::collections::BTreeMap<&'static str, Vec<f64>> =
        std::collections::BTreeMap::new();
    let mut test_order: Vec<&'static str> = Vec::new();
    let mut streams = 0usize;
    let mut all_passed = true;
    let mut min_cell_entropy = f64::INFINITY;

    for m in Manufacturer::ALL {
        for config in fleet(m, devices_per_mfr, 100 + m as u64) {
            let (mut ctrl, catalog) = pipeline(config, 8, scale.pick(256, 1024), 30, 1000);
            if catalog.is_empty() {
                continue;
            }
            // Densest words first; sample whole words so that every RNG
            // cell in the word yields a stream from the same read pass.
            let mut words: Vec<_> = catalog
                .words()
                .iter()
                .map(|(a, b)| (*a, b.clone()))
                .collect();
            words.sort_by(|a, b| b.1.len().cmp(&a.1.len()));
            // Two-stage per-cell selection, as a lab would do it:
            // screen each candidate cell over 100k reads and keep only
            // cells with negligible observed bias (the truly metastable
            // ones), then extend those streams to full length.
            const SCREEN_READS: usize = 100_000;
            const SCREEN_BIAS: f64 = 0.0025;
            let mut cell_streams: Vec<Vec<bool>> = Vec::new();
            ctrl.set_trcd_ns(10.0);
            for (addr, bits) in words {
                if cell_streams.len() >= cells_per_device {
                    break;
                }
                let expected = 0u64; // solid-zero pattern
                ctrl.device_mut()
                    .fill_row(addr.bank, addr.row, dram_sim::DataPattern::Solid0);
                let read_word = |ctrl: &mut memctrl::MemoryController| -> u64 {
                    ctrl.refresh_row(addr.bank, addr.row).expect("refresh");
                    ctrl.act(addr.bank, addr.row).expect("act");
                    let got = ctrl.rd(addr.bank, addr.row, addr.col).expect("rd");
                    if got != expected {
                        ctrl.wr(addr.bank, addr.row, addr.col, expected)
                            .expect("wr");
                    }
                    ctrl.pre(addr.bank).expect("pre");
                    got
                };
                let mut streams_here: Vec<Vec<bool>> =
                    vec![Vec::with_capacity(stream_bits); bits.len()];
                for _ in 0..SCREEN_READS {
                    let got = read_word(&mut ctrl);
                    for (s, &bit) in bits.iter().enumerate() {
                        streams_here[s].push((got >> bit) & 1 == 1);
                    }
                }
                // Keep the unbiased cells of this word.
                let keep: Vec<usize> = (0..bits.len())
                    .filter(|&s| {
                        let ones = streams_here[s].iter().filter(|&&b| b).count() as f64;
                        (ones / SCREEN_READS as f64 - 0.5).abs() < SCREEN_BIAS
                    })
                    .collect();
                if keep.is_empty() {
                    continue;
                }
                for _ in SCREEN_READS..stream_bits {
                    let got = read_word(&mut ctrl);
                    for (s, &bit) in bits.iter().enumerate() {
                        streams_here[s].push((got >> bit) & 1 == 1);
                    }
                }
                for s in keep {
                    cell_streams.push(std::mem::take(&mut streams_here[s]));
                }
            }
            ctrl.reset_trcd();

            for stream in cell_streams.iter().take(cells_per_device) {
                let ones = stream.iter().filter(|&&b| b).count() as f64 / stream.len() as f64;
                min_cell_entropy = min_cell_entropy.min(binary_entropy(ones));
                let bits = Bits::from_bools(stream.iter().copied());
                let report = NistSuite::paper().run(&bits);
                streams += 1;
                for o in &report.outcomes {
                    if !test_order.contains(&o.name) {
                        test_order.push(o.name);
                    }
                    match &o.result {
                        Ok(r) => per_test_p.entry(o.name).or_default().push(r.mean_p()),
                        Err(StsError::NotApplicable { .. }) => {}
                        Err(e) => panic!("{e}"),
                    }
                }
                all_passed &= report.all_passed();
            }
            println!(
                "manufacturer {m}: {} RNG cells in catalog; sampled {} per-cell streams",
                catalog.len(),
                cell_streams.len().min(cells_per_device)
            );
        }
    }

    println!(
        "\n{:<42} {:>10}  Status   (average over {streams} streams)",
        "NIST Test Name", "P-value"
    );
    for name in test_order {
        if let Some(ps) = per_test_p.get(name) {
            let mean = ps.iter().sum::<f64>() / ps.len() as f64;
            let pass = ps.iter().all(|&p| p >= 1e-4);
            println!(
                "{name:<42} {mean:>10.3}  {}",
                if pass { "PASS" } else { "FAIL" }
            );
        }
    }
    println!("\nminimum per-RNG-cell binary Shannon entropy: {min_cell_entropy:.4}");
    println!("all streams passed all applicable tests: {all_passed}");
    println!("\npaper: every test passes on all 236 streams; min entropy 0.9507");
}
