//! Figure 3 — the command sequence for reading a DRAM cell and the
//! cell/bitline state during each step, rendered as an ASCII waveform
//! from the same settling model that drives the failure physics.

use dram_sim::waveform::{read_cycle, voltage_at_read, Phase};
use dram_sim::Manufacturer;

fn main() {
    let profile = Manufacturer::A.profile();
    println!("== Figure 3: bitline voltage through ACT -> READ -> PRE ==\n");

    let pre_at = 42.0; // tRAS
    let wave = read_cycle(&profile, pre_at, 56.0, 0.5);

    // ASCII plot: voltage on the y axis (0.45..1.0), time on the x axis.
    let rows = 16;
    let mut grid = vec![vec![' '; wave.len()]; rows];
    for (x, s) in wave.iter().enumerate() {
        let y = ((1.0 - (s.v_bitline - 0.45) / 0.55) * (rows - 1) as f64).round() as usize;
        grid[y.min(rows - 1)][x] = '*';
    }
    // Threshold line.
    let theta_y = ((1.0 - (profile.theta_v - 0.45) / 0.55) * (rows - 1) as f64).round() as usize;
    for x in 0..wave.len() {
        if grid[theta_y][x] == ' ' {
            grid[theta_y][x] = '-';
        }
    }
    for (y, row) in grid.iter().enumerate() {
        let label = if y == 0 {
            "Vdd    "
        } else if y == theta_y {
            "Vread  "
        } else if y == rows - 1 {
            "Vdd/2  "
        } else {
            "       "
        };
        println!("{label}|{}", row.iter().collect::<String>());
    }
    // Phase ruler.
    let mut ruler = String::new();
    let mut last: Option<Phase> = None;
    for s in &wave {
        let c = match s.phase {
            Phase::Precharged => 'P',
            Phase::ChargeSharing => 'c',
            Phase::Sensing => 's',
            Phase::Restored => 'R',
            Phase::Precharging => 'p',
        };
        ruler.push(if last == Some(s.phase) { ' ' } else { c });
        last = Some(s.phase);
    }
    println!("       |{ruler}");
    println!("        P=precharged c=charge-sharing s=sensing R=restored p=precharging");
    println!("        ACT at t=0; PRE at t={pre_at} ns (tRAS); x step 0.5 ns\n");

    println!(
        "bitline voltage at READ time vs tRCD (threshold Vread = {:.2}):",
        profile.theta_v
    );
    for trcd in [6.0, 8.0, 10.0, 13.0, 18.0] {
        let v = voltage_at_read(&profile, trcd);
        println!(
            "  tRCD {trcd:>5.1} ns: V = {v:.3} {}",
            if v < profile.theta_v {
                "(below Vread -> activation failures)"
            } else if v < profile.theta_v + 0.05 {
                "(marginal -> metastable RNG cells)"
            } else {
                "(safe)"
            }
        );
    }
    println!("\npaper shape: reading before the bitline reaches Vread returns wrong values;");
    println!("the 6-13 ns range samples the marginal region of the settling curve");
}
