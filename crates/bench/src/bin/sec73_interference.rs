//! Section 7.3 — low system interference: D-RaNGe throughput from idle
//! DRAM bandwidth under SPEC CPU2006-like workloads.
//!
//! The paper measures the idle DRAM bandwidth left by each workload and
//! finds D-RaNGe can still deliver 83.1 Mb/s on average (min 49.1,
//! max 98.3) with no performance impact. Here each workload's idle
//! fraction scales the measured unconstrained single-channel
//! throughput.

use dram_sim::Manufacturer;
use drange_bench::{bar, fleet, mbps, pipeline, Scale};
use drange_core::throughput::catalog_throughput_bps;
use memctrl::workloads::{idle_stats, spec2006_suite};

fn main() {
    let scale = Scale::from_args();
    println!("== Section 7.3: TRNG throughput under SPEC-like load ==\n");

    // Unconstrained single-channel throughput (8 banks), averaged over
    // a few devices.
    let mut unconstrained = Vec::new();
    for config in fleet(Manufacturer::A, scale.pick(2, 6), 73) {
        let (_ctrl, catalog) = pipeline(config, 8, scale.pick(256, 1024), 30, 1000);
        unconstrained.push(catalog_throughput_bps(
            &catalog,
            dram_sim::TimingParams::lpddr4_3200(),
            10.0,
            8,
            8,
        ));
    }
    let base = unconstrained.iter().sum::<f64>() / unconstrained.len() as f64;
    println!("unconstrained single-channel throughput: {}\n", mbps(base));

    let suite = spec2006_suite();
    println!(
        "{:<12} {:>6} {:>10} {:>12}  {}",
        "workload", "MPKI", "idle frac", "TRNG t'put", ""
    );
    let mut rates = Vec::new();
    for w in &suite {
        let rate = base * w.idle_fraction();
        rates.push(rate);
        println!(
            "{:<12} {:>6.1} {:>10.2} {:>12}  {}",
            w.name,
            w.mpki,
            w.idle_fraction(),
            mbps(rate),
            bar(w.idle_fraction(), 30)
        );
    }
    let stats = idle_stats(&suite);
    let avg = base * stats.mean;
    let min = base * stats.min;
    let max = base * stats.max;
    println!(
        "\naverage (min, max) TRNG throughput under load: {} ({}, {})",
        mbps(avg),
        mbps(min),
        mbps(max)
    );
    println!("paper: 83.1 (49.1, 98.3) Mb/s with no significant slowdown");
}
