//! Figure 7 — density of RNG cells in DRAM words, per bank.
//!
//! For every bank of a fleet of devices from each manufacturer, counts
//! the number of words containing exactly k RNG cells (k = 1..4) and
//! reports the distribution across banks (the paper's log-scale
//! box-and-whiskers). Expected shape: every bank has words with RNG
//! cells; counts fall steeply with k; a small tail of words reaches 3-4
//! cells.

use dram_sim::Manufacturer;
use drange_bench::{box_stats, fleet, pipeline, Scale};

fn main() {
    let scale = Scale::from_args();
    let devices_per_mfr = scale.pick(2, 8);
    let rows = scale.pick(256, 1024);
    println!("== Figure 7: RNG cells per DRAM word, per bank ==");
    println!(
        "{} devices x 8 banks per manufacturer, rows 0..{rows}\n",
        devices_per_mfr
    );

    for m in Manufacturer::ALL {
        let mut per_k: Vec<Vec<f64>> = vec![Vec::new(); 5]; // counts per bank for k=1..4
        let mut total_cells = 0usize;
        for config in fleet(m, devices_per_mfr, 700 + m as u64 * 31) {
            let (_ctrl, catalog) = pipeline(config, 8, rows, 30, 1000);
            total_cells += catalog.len();
            for bank in 0..8 {
                let hist = catalog.density_histogram(bank, 4);
                for k in 1..=4 {
                    per_k[k].push(hist[k] as f64);
                }
            }
        }
        println!(
            "manufacturer {m}: {} RNG cells total across {} banks",
            total_cells,
            devices_per_mfr * 8
        );
        for k in 1..=4 {
            let s = box_stats(&per_k[k]);
            println!("  words with {k} RNG cell(s) per bank: {s}");
        }
        let banks_with_any = per_k[1]
            .iter()
            .zip(&per_k[2])
            .zip(&per_k[3])
            .zip(&per_k[4])
            .filter(|(((a, b), c), d)| **a + **b + **c + **d > 0.0)
            .count();
        println!(
            "  banks with at least one RNG-cell word: {banks_with_any}/{}\n",
            per_k[1].len()
        );
    }
    println!("paper shape: RNG-cell words in every bank; counts decay steeply with k;");
    println!("maximum density 4 RNG cells per word");
}
