//! Section 5.4 — entropy variation over time.
//!
//! The paper records F_prob over 250 rounds spanning 15 days and finds
//! it does not change significantly (manufacturing variation is fixed).
//! This bench runs many profiling rounds at identical conditions and
//! reports the per-cell round-to-round F_prob spread: it should match
//! binomial sampling noise with no drift trend.
//!
//! With `--ramp`, a slow thermal excursion (+10 °C across the first
//! half of the rounds, back to baseline across the second half) is
//! applied through the environmental fault schedule instead of holding
//! conditions fixed. The drift figures then quantify how much an
//! uncompensated temperature swing moves F_prob — the situation the
//! self-healing lifecycle and periodic re-identification guard against.
//! The nightly chaos tier runs this mode at full scale.

use dram_sim::{DeviceConfig, EnvSchedule, Manufacturer};
use drange_bench::Scale;
use drange_core::{ProfileSpec, Profiler};
use memctrl::MemoryController;

fn main() {
    let scale = Scale::from_args();
    let ramp = std::env::args().any(|a| a == "--ramp");
    let rounds = scale.pick(25, 250);
    let iterations = scale.pick(50, 100);
    let rows = scale.pick(256, 1024);
    println!("== Section 5.4: F_prob stability over time ==");
    println!("{rounds} rounds x {iterations} iterations, rows 0..{rows}");
    if ramp {
        println!("environment: slow +10 degC ramp up and back down across the run\n");
    } else {
        println!("environment: fixed conditions\n");
    }

    let mut ctrl = MemoryController::from_config(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(54)
            .with_noise_seed(15),
    );
    // One schedule step per profiling round: up for the first half,
    // back down for the second, so the run ends at baseline.
    let half = (rounds / 2).max(1);
    let mut schedule = ramp.then(|| {
        EnvSchedule::new(54)
            .ramp(10.0, half)
            .ramp(-10.0, rounds - half)
    });

    // Track cells that failed in round 0 with mid-range probability.
    let spec = ProfileSpec {
        rows: 0..rows,
        ..ProfileSpec::default()
    }
    .with_iterations(iterations);
    let first = Profiler::new(&mut ctrl)
        .run(spec.clone())
        .expect("profiling succeeds");
    let tracked = first.cells_in_band(0.2, 0.8);
    println!(
        "tracking {} cells with round-0 F_prob in [0.2, 0.8]",
        tracked.len()
    );

    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); tracked.len()];
    for (i, &c) in tracked.iter().enumerate() {
        series[i].push(first.fprob(c));
    }
    for _ in 1..rounds {
        if let Some(s) = schedule.as_mut() {
            let _ = s.step(ctrl.device_mut()).expect("schedule step succeeds");
        }
        let p = Profiler::new(&mut ctrl)
            .run(spec.clone())
            .expect("profiling succeeds");
        for (i, &c) in tracked.iter().enumerate() {
            series[i].push(p.fprob(c));
        }
    }

    // Per-cell spread vs binomial expectation.
    let mut excess = Vec::new();
    let mut drifts = Vec::new();
    for s in &series {
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let var = s.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / s.len() as f64;
        let binom_var = mean * (1.0 - mean) / iterations as f64;
        excess.push(var / binom_var.max(1e-9));
        // Linear drift: first-half mean vs second-half mean.
        let half = s.len() / 2;
        let a = s[..half].iter().sum::<f64>() / half as f64;
        let b = s[half..].iter().sum::<f64>() / (s.len() - half) as f64;
        drifts.push(b - a);
    }
    let mean_excess = excess.iter().sum::<f64>() / excess.len().max(1) as f64;
    let mean_drift = drifts.iter().sum::<f64>() / drifts.len().max(1) as f64;
    let max_drift = drifts
        .iter()
        .copied()
        .fold(0.0f64, |acc, d| acc.max(d.abs()));

    println!("observed variance / binomial sampling variance (mean): {mean_excess:.2}");
    println!("  (1.0 means the only round-to-round variation is sampling noise)");
    println!("mean first-half vs second-half drift: {mean_drift:+.4}");
    println!("max per-cell drift magnitude:        {max_drift:.4}");
    println!();
    if ramp {
        println!("ramp shape: the excursion peaks mid-run and returns to baseline,");
        println!("so first-half/second-half means stay close while the variance");
        println!("excess above 1.0 exposes the temperature-driven F_prob swing");
    } else {
        println!("paper shape: F_prob does not change significantly over 250 rounds /");
        println!("15 days — re-identification intervals of >= 15 days are safe");
    }
}
