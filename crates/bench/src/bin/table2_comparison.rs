//! Table 2 — comparison of D-RaNGe with prior DRAM-based TRNGs.
//!
//! Runs each mechanism on the same simulated device family and reports
//! the paper's columns: true randomness, streaming capability, 64-bit
//! latency, energy per bit, and peak throughput.

use dram_sim::{DeviceConfig, EnergyModel, Manufacturer, TimingParams};
use drange_bench::{pipeline, Scale};
use drange_core::latency::{latency_64bit_ns, LatencyScenario};
use drange_core::throughput::scale_to_channels;
use drange_core::{DRange, DRangeConfig};
use memctrl::MemoryController;
use trng_baselines::retention_trng::RetentionRegion;
use trng_baselines::{CommandScheduleTrng, KellerTrng, StartupTrng, SutarTrng, TrngMetrics};

fn device() -> DeviceConfig {
    DeviceConfig::new(Manufacturer::A)
        .with_seed(22)
        .with_noise_seed(23)
}

fn drange_row(scale: Scale) -> TrngMetrics {
    let (mut ctrl, catalog) = pipeline(device(), 8, scale.pick(256, 1024), 30, 1000);
    let energy = EnergyModel::lpddr4();
    // Record the sampling command trace for the energy model.
    ctrl.start_recording();
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let mut inner_bits = 0u64;
    for _ in 0..scale.pick(500, 5000) {
        inner_bits += trng.sample_once().expect("sample") as u64;
    }
    let throughput = trng.stats().throughput_bps();
    let mut ctrl = trng.into_controller();
    let trace = ctrl.stop_recording();
    let nj_per_bit = energy.nj_per_bit(&trace, inner_bits.max(1));

    let timing = TimingParams::lpddr4_3200();
    let worst_ns = latency_64bit_ns(timing, 10.0, LatencyScenario::worst_case());
    TrngMetrics {
        name: "D-RaNGe",
        year: 2018,
        entropy_source: "Activation Failures",
        true_random: true,
        streaming: true,
        latency_64bit_ps: (worst_ns * 1000.0) as u64,
        energy_nj_per_bit: nj_per_bit,
        peak_throughput_bps: scale_to_channels(throughput, 4),
    }
}

fn pyo_row(scale: Scale) -> TrngMetrics {
    let mut t = CommandScheduleTrng::new(MemoryController::from_config(device()));
    let _ = t.generate_bits(scale.pick(256, 2048)).expect("bits");
    let bps = t.throughput_bps();
    let lat = t.latency_64bit_ps().expect("latency");
    TrngMetrics {
        name: "Pyo+",
        year: 2009,
        entropy_source: "Command Schedule",
        true_random: false, // the paper's point: deterministic source
        streaming: true,
        latency_64bit_ps: lat,
        energy_nj_per_bit: f64::NAN, // N/A in the paper
        peak_throughput_bps: scale_to_channels(bps, 4),
    }
}

fn retention_rows(scale: Scale) -> (TrngMetrics, TrngMetrics) {
    let pause = 40.0;
    let region = RetentionRegion {
        bank: 0,
        rows: 0..scale.pick(256, 1024),
    };
    let energy = EnergyModel::lpddr4();

    let mut keller = KellerTrng::enroll(
        MemoryController::from_config(device()),
        region.clone(),
        pause,
    )
    .expect("enroll");
    let kbits = keller.harvest().expect("harvest").len().max(1) as u64;
    let keller_bps = keller.throughput_bps();

    let mut sutar = SutarTrng::new(
        MemoryController::from_config(device()),
        region.clone(),
        pause,
    );
    let _ = sutar.harvest().expect("harvest");
    let sutar_bps = sutar.throughput_bps();
    // Energy: write + read the region once plus 40 s of background power,
    // amortized over 256 bits (the paper's ~mJ/bit scale).
    let words = sutar.region_words() as f64;
    let pause_ps = 40e12;
    let e_pj = words * (energy.wr_pj + energy.rd_pj)
        + energy.act_pj * (region.rows.end - region.rows.start) as f64 * 2.0
        + energy.background_mw * pause_ps * 1e-3;
    let mj_per_bit_nj = e_pj / 256.0 * 1e-3;

    let keller_m = TrngMetrics {
        name: "Keller+",
        year: 2014,
        entropy_source: "Data Retention",
        true_random: true,
        streaming: true,
        latency_64bit_ps: keller.latency_64bit_ps(),
        energy_nj_per_bit: e_pj / kbits as f64 * 1e-3,
        peak_throughput_bps: keller_bps,
    };
    let sutar_m = TrngMetrics {
        name: "Sutar+",
        year: 2018,
        entropy_source: "Data Retention",
        true_random: true,
        streaming: true,
        latency_64bit_ps: sutar.latency_64bit_ps(),
        energy_nj_per_bit: mj_per_bit_nj,
        peak_throughput_bps: sutar_bps,
    };
    (keller_m, sutar_m)
}

fn startup_row() -> TrngMetrics {
    // A smaller device keeps enrollment quick; density is what matters.
    let config = DeviceConfig::new(Manufacturer::A)
        .with_seed(31)
        .with_noise_seed(32)
        .with_geometry(dram_sim::Geometry {
            banks: 2,
            rows: 256,
            cols: 8,
            word_bits: 64,
            subarray_rows: 256,
        });
    let mut t = StartupTrng::enroll(MemoryController::from_config(config)).expect("enroll");
    let bits = t.harvest().expect("harvest").len().max(1);
    let energy = EnergyModel::lpddr4();
    // Readout energy only (as the paper's optimistic estimate does).
    let e_pj = bits as f64 / 64.0 * (energy.act_pj + energy.rd_pj + energy.pre_pj);
    TrngMetrics {
        name: "Tehranipoor+",
        year: 2016,
        entropy_source: "Startup Values",
        true_random: true,
        streaming: false, // requires a power cycle per harvest
        latency_64bit_ps: t.latency_64bit_ps(),
        energy_nj_per_bit: e_pj / bits as f64 * 1e-3,
        peak_throughput_bps: t.throughput_bps(),
    }
}

fn main() {
    let scale = Scale::from_args();
    println!("== Table 2: comparison with prior DRAM-based TRNGs ==\n");
    println!(
        "{:<14} {:<6} {:<22} {:^6} {:^9} {:>10} {:>14} {:>14}",
        "Proposal", "Year", "Entropy Source", "TRNG", "Stream", "64b Lat", "nJ/bit", "Peak T'put"
    );
    let (keller, sutar) = retention_rows(scale);
    let rows = vec![
        pyo_row(scale),
        keller,
        startup_row(),
        sutar,
        drange_row(scale),
    ];
    for r in &rows {
        println!("{r}");
    }

    let drange = rows.last().expect("rows nonempty");
    let best_prior = rows[..rows.len() - 1]
        .iter()
        .map(|r| r.peak_throughput_bps)
        .fold(0.0f64, f64::max);
    println!(
        "\nD-RaNGe vs best prior throughput: {:.0}x",
        drange.peak_throughput_bps / best_prior.max(1.0)
    );
    println!("paper: >100x over the best prior DRAM TRNG (211x max, 128x avg);");
    println!("D-RaNGe 4.4 nJ/bit, 100-960 ns latency, 717.4 Mb/s peak (4 channels)");
}
