//! Engine scaling — channel-level parallelism of the concurrent
//! harvesting engine (Sections 6.2 and 7.3: throughput scales with the
//! number of independent channels, Equation (1) via
//! `throughput::scale_to_channels`).
//!
//! Sweeps the worker count from 1 to 8 (one worker = one simulated
//! channel with its own memory controller and `DRange`) and reports the
//! observed bits/s. The headline metric is the aggregate *device-time*
//! throughput — the sum of the per-channel harvest rates, which is what
//! the paper's channel scaling claims and which is independent of how
//! many host cores execute the simulation. Wall-clock throughput is
//! printed alongside for reference.
//!
//! ```sh
//! cargo run -p drange-bench --release --bin engine_scaling [--full]
//! ```

use drange_bench::{mbps, pipeline, Scale};
use drange_core::{channel_sources, DRangeConfig, EngineConfig, HarvestEngine};
use dram_sim::{DeviceConfig, Manufacturer};

fn main() {
    let scale = Scale::from_args();
    let banks = scale.pick(4, 8);
    let rows = scale.pick(128, 256);
    let profile_iters = scale.pick(20, 40);
    let take_bits = scale.pick(1 << 15, 1 << 18);

    let base =
        DeviceConfig::new(Manufacturer::A).with_seed(0xE21).with_noise_seed(0xFA11);
    println!("profiling + identification ({banks} banks, {rows} rows)...");
    let (_, catalog) = pipeline(base.clone(), banks, rows, profile_iters, 1000);
    println!("catalog: {} RNG cells\n", catalog.len());

    println!("harvest of {take_bits} screened bits per configuration:\n");
    println!("workers | harvested bits | device throughput | wall throughput | speedup");
    println!("--------|----------------|-------------------|-----------------|--------");
    let mut single_channel_bps = 0.0f64;
    for workers in 1..=8usize {
        let sources = channel_sources(&base, &catalog, &DRangeConfig::default(), workers)
            .expect("channel sources");
        let engine =
            HarvestEngine::spawn(sources, EngineConfig::default()).expect("engine");
        let t0 = std::time::Instant::now();
        let mut remaining = take_bits;
        while remaining > 0 {
            let chunk = remaining.min(4096);
            engine.take_bits(chunk).expect("screened bits");
            remaining -= chunk;
        }
        let wall = t0.elapsed().as_secs_f64();
        let stats = engine.shutdown();
        let device_bps = stats.aggregate_device_bps();
        if workers == 1 {
            single_channel_bps = device_bps;
        }
        println!(
            "{workers:>7} | {:>14} | {:>17} | {:>15} | {:>6.2}x",
            stats.harvested_bits,
            mbps(device_bps),
            mbps(take_bits as f64 / wall),
            device_bps / single_channel_bps,
        );
    }
    println!(
        "\ndevice throughput is the sum of per-channel harvest rates \
         (bits per second of DRAM device time), the engine analogue of \
         the paper's independent-channel scaling."
    );
}
