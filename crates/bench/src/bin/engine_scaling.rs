//! Engine scaling — channel-level parallelism of the concurrent
//! harvesting engine (Sections 6.2 and 7.3: throughput scales with the
//! number of independent channels, Equation (1) via
//! `throughput::scale_to_channels`).
//!
//! Sweeps the worker count from 1 to 12 (one worker = one simulated
//! channel with its own memory controller and `DRange`) and reports the
//! observed bits/s. The headline metric is the aggregate *device-time*
//! throughput — the sum of the per-channel harvest rates, which is what
//! the paper's channel scaling claims and which is independent of how
//! many host cores execute the simulation. Wall-clock throughput is
//! printed alongside for reference.
//!
//! Each configuration harvests at least [`MIN_MEASURED_BITS`] after an
//! untimed warm-up draw: the warm-up absorbs thread spawn, first-pass
//! catalog planning, and the initial bulk resolve, and the floor keeps
//! the per-worker rates out of the noise (an earlier revision measured
//! only ~33 k bits per configuration, so single-channel rates swung
//! with scheduler jitter).
//!
//! ```sh
//! cargo run -p drange-bench --release --bin engine_scaling [--full]
//! ```

use dram_sim::{DeviceConfig, Manufacturer};
use drange_bench::{bench_report_path, mbps, pipeline, BenchReport, Scale};
use drange_core::telemetry::{fmt_ns, MetricValue, MetricsRegistry};
use drange_core::{
    channel_sources, channel_sources_with_telemetry, DRangeConfig, EngineConfig, HarvestEngine,
};

/// Minimum screened bits measured per worker configuration. Below
/// this the per-channel device-time rates are dominated by start-up
/// transients (the bench used to record ~33 k bits and the 1-worker
/// baseline jittered by tens of percent between runs).
const MIN_MEASURED_BITS: usize = 100_000;

/// Untimed bits drawn after spawn, before the measured window: absorbs
/// thread start-up, catalog planning, and the first bulk resolve.
const WARMUP_BITS: usize = 8_192;

fn main() {
    let scale = Scale::from_args();
    let banks = scale.pick(4, 8);
    let rows = scale.pick(128, 256);
    let profile_iters = scale.pick(20, 40);
    let take_bits = scale.pick(1 << 15, 1 << 18).max(MIN_MEASURED_BITS);

    let base = DeviceConfig::new(Manufacturer::A)
        .with_seed(0xE21)
        .with_noise_seed(0xFA11);
    println!("profiling + identification ({banks} banks, {rows} rows)...");
    let (_, catalog) = pipeline(base.clone(), banks, rows, profile_iters, 1000);
    println!("catalog: {} RNG cells\n", catalog.len());

    println!(
        "harvest of {take_bits} screened bits per configuration \
         (after a {WARMUP_BITS}-bit warm-up):\n"
    );
    println!("workers | harvested bits | device throughput | wall throughput | speedup");
    println!("--------|----------------|-------------------|-----------------|--------");
    let mut single_channel_bps = 0.0f64;
    let mut report = BenchReport::new();
    // Sole author of its section (the worker sweep grid changes over
    // time; ownership drops a stale grid's keys). `simd` stays shared
    // (key-merged) with fig8_throughput.
    report.own_section("engine_scaling");
    let widest = 12usize;
    for workers in [1usize, 2, 4, 8, widest] {
        let sources = channel_sources(&base, &catalog, &DRangeConfig::default(), workers)
            .expect("channel sources");
        let engine = HarvestEngine::spawn(sources, EngineConfig::default()).expect("engine");
        // Warm-up (untimed): thread spawn, first-pass planning, and the
        // initial bulk resolve must not land in the measured window.
        let mut remaining = WARMUP_BITS;
        while remaining > 0 {
            let chunk = remaining.min(4096);
            engine.take_bits(chunk).expect("warm-up bits");
            remaining -= chunk;
        }
        let t0 = std::time::Instant::now();
        let mut remaining = take_bits;
        while remaining > 0 {
            let chunk = remaining.min(4096);
            engine.take_bits(chunk).expect("screened bits");
            remaining -= chunk;
        }
        let wall = t0.elapsed().as_secs_f64();
        let stats = engine.shutdown();
        let device_bps = stats.aggregate_device_bps();
        if workers == 1 {
            single_channel_bps = device_bps;
        }
        let wall_bps = take_bits as f64 / wall;
        println!(
            "{workers:>7} | {:>14} | {:>17} | {:>15} | {:>6.2}x",
            stats.harvested_bits,
            mbps(device_bps),
            mbps(wall_bps),
            device_bps / single_channel_bps,
        );
        report.set(
            "engine_scaling",
            &format!("workers_{workers}_device_bits_per_sec"),
            device_bps,
        );
        report.set(
            "engine_scaling",
            &format!("workers_{workers}_harvested_bits"),
            stats.harvested_bits as f64,
        );
        if workers == widest {
            // Headline metrics for the tracked report come from the
            // widest configuration.
            let sensed = stats.cache_skip_reads + stats.cache_hit_reads + stats.cache_resolve_reads;
            report.set("engine_scaling", "bits_per_sec", wall_bps);
            report.set(
                "engine_scaling",
                "ns_per_read",
                wall * 1e9 / sensed.max(1) as f64,
            );
            report.set("engine_scaling", "cache_hit_rate", stats.cache_hit_rate());
            report.set("engine_scaling", "device_bits_per_sec", device_bps);
            report.set(
                "engine_scaling",
                "harvested_bits",
                stats.harvested_bits as f64,
            );
            report.set(
                "engine_scaling",
                "scaling_efficiency",
                device_bps / (single_channel_bps * widest as f64),
            );
            // SIMD resolve activity across all 12 channels: how much
            // of the stochastic-cell math ran in full vector lanes.
            report.set("simd", "engine_lane_utilization", stats.lane_utilization());
            report.set("simd", "engine_bulk_cells", stats.cache_bulk_cells as f64);
        }
    }
    let path = bench_report_path();
    // A read-only checkout or a corrupted report file must not wedge
    // the bench after the measurements already ran: report and move on.
    match report.update_file(&path) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write {}: {e}", path.display()),
    }
    println!(
        "\ndevice throughput is the sum of per-channel harvest rates \
         (bits per second of DRAM device time), the engine analogue of \
         the paper's independent-channel scaling."
    );

    // One more run at 4 workers with the telemetry registry attached:
    // per-stage latency quantiles for the harvest → health → publish →
    // collect pipeline, plus the client-side take_bits latency.
    let workers = 4usize;
    println!("\ninstrumented run ({workers} workers) — per-stage latency:\n");
    let registry = MetricsRegistry::new();
    let sources = channel_sources_with_telemetry(
        &base,
        &catalog,
        &DRangeConfig::default(),
        workers,
        Some(&registry),
    )
    .expect("channel sources");
    let engine =
        HarvestEngine::spawn_with_telemetry(sources, EngineConfig::default(), Some(&registry))
            .expect("engine");
    let mut remaining = take_bits;
    while remaining > 0 {
        let chunk = remaining.min(4096);
        engine.take_bits(chunk).expect("screened bits");
        remaining -= chunk;
    }
    let stats = engine.shutdown();

    // Merge each stage's per-worker histograms into one distribution.
    println!("stage    |     p50 |     p99 |     max | samples");
    println!("---------|---------|---------|---------|--------");
    for stage in ["harvest", "health", "publish", "collect"] {
        let mut merged: Option<drange_core::telemetry::HistogramSnapshot> = None;
        for sample in registry.samples() {
            if sample.name == "drange_stage_latency_ns"
                && sample
                    .labels
                    .iter()
                    .any(|(k, v)| k == "stage" && v == stage)
            {
                if let MetricValue::Histogram(h) = sample.value {
                    match &mut merged {
                        Some(m) => m.merge(&h),
                        None => merged = Some(h),
                    }
                }
            }
        }
        let h = merged.expect("stage histogram registered");
        println!(
            "{stage:<8} | {:>7} | {:>7} | {:>7} | {:>7}",
            fmt_ns(h.p50()),
            fmt_ns(h.p99()),
            fmt_ns(h.max),
            h.count
        );
    }
    for sample in registry.samples() {
        if sample.name == "drange_take_bits_latency_ns" {
            if let MetricValue::Histogram(h) = sample.value {
                println!(
                    "take_bits: p50 {} / p99 {} over {} calls",
                    fmt_ns(h.p50()),
                    fmt_ns(h.p99()),
                    h.count
                );
            }
        }
    }
    println!(
        "aggregate: {} of device time, {} bits harvested",
        mbps(stats.aggregate_device_bps()),
        stats.harvested_bits
    );
}
