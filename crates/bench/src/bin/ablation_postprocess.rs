//! Ablation — post-processing cost (paper Section 2.2).
//!
//! The paper notes D-RaNGe's RNG cells need no post-processing, while
//! standard de-biasing stages cost "up to 80 %" of throughput. This
//! ablation measures the von Neumann corrector's cost on D-RaNGe output
//! and on artificially biased streams, and the SHA-256 conditioning
//! rate for comparison.

use dram_sim::{DeviceConfig, Manufacturer};
use drange_bench::{pipeline, Scale};
use drange_core::{DRange, DRangeConfig, VonNeumann};
use trng_baselines::Sha256;

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(40_000, 400_000);
    println!("== Ablation: post-processing throughput cost ==\n");

    let (ctrl, catalog) = pipeline(
        DeviceConfig::new(Manufacturer::B)
            .with_seed(88)
            .with_noise_seed(89),
        8,
        scale.pick(256, 1024),
        30,
        1000,
    );
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let raw = trng.bits(n).expect("bits");
    let raw_bps = trng.stats().throughput_bps();
    let ones = raw.iter().filter(|&&b| b).count() as f64 / raw.len() as f64;
    println!(
        "raw D-RaNGe stream: {} bits, ones fraction {ones:.4}",
        raw.len()
    );
    println!("raw throughput: {:.2} Mb/s (device time)\n", raw_bps / 1e6);

    // Von Neumann on the (already unbiased) D-RaNGe output.
    let mut vn = VonNeumann::new();
    let corrected = vn.correct(&raw);
    println!(
        "von Neumann on D-RaNGe output: {} -> {} bits (efficiency {:.3}; ideal unbiased source: 0.25)",
        raw.len(),
        corrected.len(),
        vn.efficiency()
    );
    println!(
        "effective throughput after correction: {:.2} Mb/s ({:.0}% cost)",
        raw_bps * vn.efficiency() / 1e6,
        (1.0 - vn.efficiency()) * 100.0
    );

    // Von Neumann on a biased source (what the paper's "up to 80%" is
    // about): p = 0.8 bias.
    let mut state = 0x1234u64;
    let biased: Vec<bool> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 5 != 0 // 80% ones
        })
        .collect();
    let mut vn2 = VonNeumann::new();
    let corrected2 = vn2.correct(&biased);
    println!(
        "\nvon Neumann on an 80/20 biased source: {} -> {} bits (efficiency {:.3}, {:.0}% cost)",
        biased.len(),
        corrected2.len(),
        vn2.efficiency(),
        (1.0 - vn2.efficiency()) * 100.0
    );

    // SHA-256 conditioning: 2:1 compression of the raw stream.
    let bytes: Vec<u8> = raw
        .chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
        .collect();
    let mut out_bits = 0usize;
    for block in bytes.chunks(64) {
        let _ = Sha256::digest(block);
        out_bits += 256;
    }
    let ratio = out_bits as f64 / (bytes.len() * 8) as f64;
    println!(
        "\nSHA-256 conditioning (512 -> 256 bits): rate ratio {ratio:.2} ({:.0}% cost)",
        (1.0 - ratio.min(1.0)) * 100.0
    );
    println!("\npaper: RNG cells are unbiased, so D-RaNGe skips post-processing entirely;");
    println!("de-biasing costs up to 80% of throughput on biased sources");
}
