//! Section 4 — DDR3 cross-validation.
//!
//! The paper verifies its LPDDR4 observations on 4 DDR3 devices from a
//! single manufacturer via SoftMC. This bench runs the full pipeline on
//! 4 simulated DDR3 devices (DDR3-1600 timing, 13.75 ns datasheet
//! tRCD) and checks that activation failures, RNG cells, and balanced
//! random output all carry over.

use dram_sim::{DeviceConfig, DramStandard, Manufacturer};
use drange_bench::{mbps, Scale};
use drange_core::throughput::catalog_throughput_bps;
use drange_core::{DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
use memctrl::MemoryController;
use nist_sts::Bits;

fn main() {
    let scale = Scale::from_args();
    let rows = scale.pick(256, 1024);
    println!("== Section 4: DDR3 cross-validation (4 devices, one manufacturer) ==\n");

    for dev in 0..4u64 {
        let config = DeviceConfig::new(Manufacturer::A)
            .with_standard(DramStandard::Ddr3)
            .with_seed(4000 + dev)
            .with_noise_seed(40 + dev);
        let mut ctrl = MemoryController::from_config(config);
        let timing = ctrl.device().timing();
        // Reduce proportionally below the DDR3 datasheet tRCD.
        let reduced = 10.0;
        let profile = Profiler::new(&mut ctrl)
            .run(
                ProfileSpec {
                    banks: (0..8).collect(),
                    rows: 0..rows,
                    ..ProfileSpec::default()
                }
                .with_trcd_ns(reduced)
                .with_iterations(30),
            )
            .expect("profiling succeeds");
        let catalog = RngCellCatalog::identify(
            &mut ctrl,
            &profile,
            IdentifySpec {
                trcd_ns: reduced,
                ..IdentifySpec::default()
            },
        )
        .expect("identification succeeds");
        let tput = catalog_throughput_bps(&catalog, timing, reduced, 8, 8);

        let mut line = format!(
            "device {dev}: {} failing cells, {} RNG cells, Eq.(1) throughput {}",
            profile.unique_failures(),
            catalog.len(),
            mbps(tput),
        );
        if !catalog.is_empty() {
            let mut trng = DRange::new(
                ctrl,
                &catalog,
                DRangeConfig {
                    trcd_ns: reduced,
                    ..DRangeConfig::default()
                },
            )
            .expect("plan");
            let raw = trng.bits(scale.pick(20_000, 200_000)).expect("bits");
            let bits = Bits::from_bools(raw.into_iter());
            let monobit = nist_sts::monobit::test(&bits).expect("monobit");
            let runs = nist_sts::runs::test(&bits).expect("runs");
            line.push_str(&format!(
                ", monobit p = {:.3}, runs p = {:.3}",
                monobit.p_values()[0],
                runs.p_values()[0]
            ));
        }
        println!("{line}");
    }
    println!("\npaper: the DDR3 devices show the same activation-failure behavior,");
    println!("demonstrating D-RaNGe works across DRAM generations");
}
