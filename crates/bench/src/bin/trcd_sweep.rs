//! Section 7.3 — the failure-inducing tRCD range.
//!
//! The paper observes activation failures for tRCD between 6 and 13 ns
//! (datasheet 18 ns). This sweep counts failures per full region scan
//! at each tRCD value.

use dram_sim::{DeviceConfig, Manufacturer};
use drange_bench::{bar, Scale};
use drange_core::{ProfileSpec, Profiler};
use memctrl::MemoryController;

fn main() {
    let scale = Scale::from_args();
    let iterations = scale.pick(5, 20);
    let rows = scale.pick(512, 1024);
    println!("== Section 7.3: failure-inducing tRCD range ==");
    println!("rows 0..{rows}, {iterations} iteration(s) per point, datasheet tRCD = 18 ns\n");

    let mut ctrl = MemoryController::from_config(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(613)
            .with_noise_seed(14),
    );
    println!("{:>8} {:>12} {:>12}", "tRCD", "fail cells", "fail events");
    let mut max_cells = 1usize;
    let mut rowsdata = Vec::new();
    for trcd10 in (50..=180).step_by(10) {
        let trcd = trcd10 as f64 / 10.0;
        let profile = Profiler::new(&mut ctrl)
            .run(
                ProfileSpec {
                    rows: 0..rows,
                    ..ProfileSpec::default()
                }
                .with_trcd_ns(trcd)
                .with_iterations(iterations),
            )
            .expect("profiling succeeds");
        max_cells = max_cells.max(profile.unique_failures());
        rowsdata.push((trcd, profile.unique_failures(), profile.total_failures()));
    }
    for (trcd, cells, events) in &rowsdata {
        // Log-scaled bar: failure counts span orders of magnitude.
        let scaled = (1.0 + *cells as f64).ln() / (1.0 + max_cells as f64).ln();
        println!(
            "{trcd:>6.1}ns {cells:>12} {events:>12}  {}",
            bar(scaled, 30)
        );
    }

    let first_zero = rowsdata
        .iter()
        .find(|(_, c, _)| *c == 0)
        .map(|(t, _, _)| *t);
    println!(
        "\nfailures vanish at tRCD >= {:.1} ns; paper: inducible for 6-13 ns",
        first_zero.unwrap_or(f64::NAN)
    );
    println!("shape: monotone decrease in failures as tRCD grows, hard zero at spec margin");
}
