//! Section 7.3 — latency to generate a 64-bit random value.
//!
//! The paper's scenarios: 960 ns worst case (1 bank, 1 channel, 1 RNG
//! cell per word), 220 ns with full bank/channel parallelism at 1 cell
//! per word, and 100 ns empirical minimum (4 cells per word). The
//! scheduler-measured values here preserve the ordering and the
//! roughly-10x worst-to-best ratio.

use dram_sim::TimingParams;
use drange_core::latency::{latency_64bit_ns, LatencyScenario};

fn main() {
    println!("== Section 7.3: 64-bit random value latency ==\n");
    let timing = TimingParams::lpddr4_3200();
    let scenarios = [
        (
            "worst: 1 bank, 1 channel, 1 cell/word",
            LatencyScenario::worst_case(),
            "960 ns",
        ),
        (
            "parallel: 8 banks, 4 channels, 1 cell/word",
            LatencyScenario {
                banks: 8,
                channels: 4,
                bits_per_word: 1,
            },
            "220 ns",
        ),
        (
            "best: 8 banks, 4 channels, 4 cells/word",
            LatencyScenario::best_case(),
            "100 ns",
        ),
    ];
    println!("{:<44} {:>12} {:>12}", "scenario", "measured", "paper");
    let mut measured = Vec::new();
    for (name, s, paper) in scenarios {
        let ns = latency_64bit_ns(timing, 10.0, s);
        measured.push(ns);
        println!("{name:<44} {ns:>9.1} ns {paper:>12}");
    }
    println!(
        "\nworst/best ratio: measured {:.1}x (paper: {:.1}x)",
        measured[0] / measured[2],
        960.0 / 100.0
    );
    println!("shape: latency falls with channel/bank parallelism and RNG-cell density");
}
