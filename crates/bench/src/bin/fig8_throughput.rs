//! Figure 8 — TRNG throughput versus number of banks used.
//!
//! Two parts:
//!
//! 1. **Analytic** (the paper's figure): Equation (1) per-bank data
//!    rates from each catalog's two best words and the Algorithm 2
//!    core-loop runtime from the command scheduler. Expected shape:
//!    throughput grows linearly with bank count; at 8 banks every
//!    device clears tens of Mb/s; the 4-channel projection reaches the
//!    paper's headline scale.
//! 2. **Measured**: wall-clock harvested-bits/s of the real `DRange`
//!    sampling loop over the simulated device, with the sensing cache
//!    off (the pre-cache slow path) and on (the memoizing fast path).
//!    Both numbers, the speedup, per-READ costs, and the steady-state
//!    cache hit rate are written to `BENCH_harvest.json` under the
//!    `fig8_throughput` section so CI can track the baseline.

use dram_sim::{Celsius, DeviceConfig, Manufacturer, TimingParams};
use drange_bench::{bench_report_path, box_stats, fleet, mbps, pipeline, BenchReport, Scale};
use drange_core::throughput::{catalog_throughput_bps, scale_to_channels};
use drange_core::{DRange, DRangeConfig};
use std::time::Instant;

/// Timed measurement windows per run. The steady-state loop is
/// deterministic (same passes, same plan, same reads per window), so
/// the *fastest* window is the one least perturbed by scheduler noise
/// — the headline ns/READ and bits/s come from it, the way
/// micro-benchmarks take a best-of-N. The full-run totals are kept for
/// the harvested-bits record.
const WINDOWS: usize = 8;

/// One measured sampling run: steady-state wall time (total and
/// best-window), harvested bits, and the sensing-cache counter deltas
/// over the timed windows.
struct Measured {
    bits: u64,
    wall_ns: f64,
    /// Wall time of the fastest of the [`WINDOWS`] equal-pass windows.
    best_window_ns: f64,
    sensed_reads: u64,
    cache_hits: u64,
    /// Cumulative fraction of bulk-resolved cells that ran in full
    /// vector lanes (includes the warm-up resolves — steady state
    /// re-resolves only on environmental change).
    lane_utilization: f64,
}

fn measure(scale: Scale, fast_path: bool) -> Measured {
    let banks = scale.pick(4, 8);
    let rows = scale.pick(128, 256);
    let profile_iters = scale.pick(20, 40);
    let warmup = scale.pick(8, 64);
    let passes = scale.pick(200, 2000);
    let passes_per_window = (passes / WINDOWS).max(1);

    let config = DeviceConfig::new(Manufacturer::A)
        .with_seed(0xF18)
        .with_noise_seed(0xF19);
    let (mut ctrl, catalog) = pipeline(config, banks, rows, profile_iters, 1000);
    ctrl.device_mut().set_sense_fast_path(fast_path);
    let mut drange =
        DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("catalog yields a plan");

    for _ in 0..warmup {
        drange.harvest_block().expect("warmup pass");
    }
    // Nudge the operating temperature and absorb the forced re-resolve
    // in one more (untimed) warm-up pass. Steady state never
    // re-resolves — the identify phase already memoized every plan
    // word — so without an environmental change the bulk SoA kernel
    // would never run and the `simd` lane counters would sit at zero.
    // Both the slow and fast run get the identical nudge, so their
    // output streams stay bit-identical.
    let t = drange.controller_mut().device_mut().temperature();
    drange
        .controller_mut()
        .device_mut()
        .set_temperature(Celsius(t.degrees() + 0.1));
    drange.harvest_block().expect("re-resolve warmup pass");
    let cache0 = drange.sense_cache_stats();
    let mut bits = 0u64;
    let mut wall_ns = 0.0f64;
    let mut best_window_ns = f64::INFINITY;
    for _ in 0..WINDOWS {
        let t0 = Instant::now();
        for _ in 0..passes_per_window {
            bits += drange.harvest_block().expect("sampling pass").len() as u64;
        }
        let window_ns = t0.elapsed().as_nanos() as f64;
        wall_ns += window_ns;
        best_window_ns = best_window_ns.min(window_ns);
    }
    let cache1 = drange.sense_cache_stats();
    Measured {
        bits,
        wall_ns,
        best_window_ns,
        sensed_reads: cache1.sensed_reads() - cache0.sensed_reads(),
        cache_hits: (cache1.skip_word_reads + cache1.hit_reads)
            - (cache0.skip_word_reads + cache0.hit_reads),
        lane_utilization: cache1.lane_utilization(),
    }
}

fn main() {
    let scale = Scale::from_args();
    let devices_per_mfr = scale.pick(2, 8);
    let rows = scale.pick(256, 1024);
    println!("== Figure 8: TRNG throughput vs banks used ==");
    println!(
        "{} devices per manufacturer, Equation (1) over scheduler runtime\n",
        devices_per_mfr
    );

    let timing = TimingParams::lpddr4_3200();
    let mut device_max_1ch: Vec<f64> = Vec::new();
    let mut device_avg_1ch: Vec<f64> = Vec::new();
    for m in Manufacturer::ALL {
        println!("manufacturer {m}:");
        let mut per_banks: Vec<Vec<f64>> = vec![Vec::new(); 9];
        for config in fleet(m, devices_per_mfr, 800 + m as u64 * 77) {
            let (_ctrl, catalog) = pipeline(config, 8, rows, 30, 1000);
            for banks in 1..=8usize {
                let bps = catalog_throughput_bps(&catalog, timing, 10.0, 8, banks);
                per_banks[banks].push(bps);
            }
        }
        for banks in 1..=8 {
            let vals = &per_banks[banks];
            let s = box_stats(vals);
            println!(
                "  {banks} bank(s): median {:>10} (min {:>10}, max {:>10})",
                mbps(s.median),
                mbps(s.min),
                mbps(s.max)
            );
        }
        device_max_1ch.extend(per_banks[8].iter().copied());
        device_avg_1ch.extend(per_banks[8].iter().copied());
        println!();
    }

    let max_1ch = device_max_1ch.iter().copied().fold(0.0f64, f64::max);
    let avg_1ch = device_avg_1ch.iter().sum::<f64>() / device_avg_1ch.len().max(1) as f64;
    println!(
        "single-channel, 8 banks: max {}, average {}",
        mbps(max_1ch),
        mbps(avg_1ch)
    );
    println!(
        "4-channel projection:     max {}, average {}",
        mbps(scale_to_channels(max_1ch, 4)),
        mbps(scale_to_channels(avg_1ch, 4))
    );
    println!("\npaper: linear scaling with banks; >= 40 Mb/s at 8 banks per device;");
    println!("4-channel max (avg) 717.4 (435.7) Mb/s");

    // -- Part 2: measured simulator harvest, slow path vs sensing cache.
    println!("\n== Measured harvest: sensing cache off vs on ==");
    let slow = measure(scale, false);
    let fast = measure(scale, true);

    // Both runs execute the identical command schedule (same seed, same
    // catalog, same plan — the correctness contract makes their output
    // streams bit-identical), so the fast run's sensed-READ count also
    // counts the slow run's sensing READs; the slow path just never
    // consults the cache.
    let reads = fast.sensed_reads.max(1);
    // Headline rates come from each run's fastest window (least
    // scheduler perturbation); passes — and so reads and bits — are
    // spread uniformly across the windows.
    let window_reads = (reads as f64 / WINDOWS as f64).max(1.0);
    let window_bits = |bits: u64| bits as f64 / WINDOWS as f64;
    let slow_bps = window_bits(slow.bits) / (slow.best_window_ns / 1e9);
    let fast_bps = window_bits(fast.bits) / (fast.best_window_ns / 1e9);
    let slow_ns_per_read = slow.best_window_ns / window_reads;
    let fast_ns_per_read = fast.best_window_ns / window_reads;
    let speedup = fast_bps / slow_bps;
    let hit_rate = fast.cache_hits as f64 / reads as f64;

    println!("harvested {} bits per configuration", fast.bits);
    println!(
        "  slow path (cache off): {:>12}  ({:>8.1} ns/READ)",
        mbps(slow_bps),
        slow_ns_per_read
    );
    println!(
        "  fast path (cache on):  {:>12}  ({:>8.1} ns/READ)",
        mbps(fast_bps),
        fast_ns_per_read
    );
    println!(
        "  speedup {speedup:.2}x, steady-state cache hit rate {:.4}",
        hit_rate
    );
    println!(
        "  (best of {WINDOWS} windows; full-run averages: slow {}, fast {})",
        mbps(slow.bits as f64 / (slow.wall_ns / 1e9)),
        mbps(fast.bits as f64 / (fast.wall_ns / 1e9)),
    );
    println!(
        "  vector-lane utilization of the bulk resolve: {:.4}",
        fast.lane_utilization
    );
    assert_eq!(
        slow.bits, fast.bits,
        "equivalence contract: both paths harvest the same bit count"
    );

    let mut report = BenchReport::new();
    // Sole author of its section; `simd` stays shared (key-merged)
    // with engine_scaling.
    report.own_section("fig8_throughput");
    report.set("fig8_throughput", "bits_per_sec", fast_bps);
    report.set("fig8_throughput", "ns_per_read", fast_ns_per_read);
    report.set("fig8_throughput", "cache_hit_rate", hit_rate);
    report.set("fig8_throughput", "slow_bits_per_sec", slow_bps);
    report.set("fig8_throughput", "fast_bits_per_sec", fast_bps);
    report.set("fig8_throughput", "slow_ns_per_read", slow_ns_per_read);
    report.set("fig8_throughput", "fast_ns_per_read", fast_ns_per_read);
    report.set("fig8_throughput", "speedup", speedup);
    report.set("fig8_throughput", "harvested_bits", fast.bits as f64);
    // SIMD resolve section: the scalar path (cache off) against the
    // vectorized SoA fast path, plus how much of the bulk math ran in
    // full four-wide lanes.
    report.set("simd", "scalar_ns_per_read", slow_ns_per_read);
    report.set("simd", "vector_ns_per_read", fast_ns_per_read);
    report.set("simd", "speedup", speedup);
    report.set("simd", "lane_utilization", fast.lane_utilization);
    let path = bench_report_path();
    // A read-only checkout or a corrupted report file must not wedge
    // the bench after the measurements already ran: report and move on.
    match report.update_file(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
