//! Figure 8 — TRNG throughput versus number of banks used.
//!
//! Applies Equation (1): per-bank data rates come from each catalog's
//! two best words, and the Algorithm 2 core-loop runtime comes from the
//! command scheduler. Expected shape: throughput grows linearly with
//! bank count; at 8 banks every device clears tens of Mb/s; the
//! 4-channel projection reaches the paper's headline scale.

use dram_sim::{Manufacturer, TimingParams};
use drange_bench::{box_stats, fleet, mbps, pipeline, Scale};
use drange_core::throughput::{catalog_throughput_bps, scale_to_channels};

fn main() {
    let scale = Scale::from_args();
    let devices_per_mfr = scale.pick(2, 8);
    let rows = scale.pick(256, 1024);
    println!("== Figure 8: TRNG throughput vs banks used ==");
    println!(
        "{} devices per manufacturer, Equation (1) over scheduler runtime\n",
        devices_per_mfr
    );

    let timing = TimingParams::lpddr4_3200();
    let mut device_max_1ch: Vec<f64> = Vec::new();
    let mut device_avg_1ch: Vec<f64> = Vec::new();
    for m in Manufacturer::ALL {
        println!("manufacturer {m}:");
        let mut per_banks: Vec<Vec<f64>> = vec![Vec::new(); 9];
        for config in fleet(m, devices_per_mfr, 800 + m as u64 * 77) {
            let (_ctrl, catalog) = pipeline(config, 8, rows, 30, 1000);
            for banks in 1..=8usize {
                let bps = catalog_throughput_bps(&catalog, timing, 10.0, 8, banks);
                per_banks[banks].push(bps);
            }
        }
        for banks in 1..=8 {
            let vals = &per_banks[banks];
            let s = box_stats(vals);
            println!(
                "  {banks} bank(s): median {:>10} (min {:>10}, max {:>10})",
                mbps(s.median),
                mbps(s.min),
                mbps(s.max)
            );
        }
        device_max_1ch.extend(per_banks[8].iter().copied());
        device_avg_1ch.extend(per_banks[8].iter().copied());
        println!();
    }

    let max_1ch = device_max_1ch.iter().copied().fold(0.0f64, f64::max);
    let avg_1ch = device_avg_1ch.iter().sum::<f64>() / device_avg_1ch.len().max(1) as f64;
    println!(
        "single-channel, 8 banks: max {}, average {}",
        mbps(max_1ch),
        mbps(avg_1ch)
    );
    println!(
        "4-channel projection:     max {}, average {}",
        mbps(scale_to_channels(max_1ch, 4)),
        mbps(scale_to_channels(avg_1ch, 4))
    );
    println!("\npaper: linear scaling with banks; >= 40 Mb/s at 8 banks per device;");
    println!("4-channel max (avg) 717.4 (435.7) Mb/s");
}
