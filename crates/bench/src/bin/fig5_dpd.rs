//! Figure 5 — data-pattern dependence of activation failures.
//!
//! Runs Algorithm 1 with all 40 data patterns (solid, checkered,
//! row/column stripes, 16 walking-1s, and all inverses) on one chip per
//! manufacturer and reports each pattern's coverage of the all-pattern
//! union, plus the pattern that finds the most cells in the 40-60 %
//! F_prob band (the paper's criterion for choosing the sampling
//! pattern).

use dram_sim::{DataPattern, DeviceConfig, Manufacturer};
use drange_bench::{bar, Scale};
use drange_core::dpd::run_study;
use drange_core::ProfileSpec;
use memctrl::MemoryController;

fn main() {
    let scale = Scale::from_args();
    let iterations = scale.pick(10, 100);
    let rows = scale.pick(256, 1024);
    println!("== Figure 5: data pattern dependence ==");
    println!("40 patterns x {iterations} iterations, rows 0..{rows}, tRCD = 10 ns\n");

    for m in Manufacturer::ALL {
        let mut ctrl =
            MemoryController::from_config(DeviceConfig::new(m).with_seed(555).with_noise_seed(11));
        let base = ProfileSpec {
            rows: 0..rows,
            ..ProfileSpec::default()
        }
        .with_iterations(iterations);
        let patterns = DataPattern::all_40();
        let study = run_study(&mut ctrl, &base, &patterns).expect("study succeeds");

        println!(
            "manufacturer {m} (union of failing cells: {}):",
            study.union_size
        );
        // Aggregate the walking patterns as the paper's figure does.
        let mut walk1 = Vec::new();
        let mut walk0 = Vec::new();
        for pc in &study.patterns {
            match pc.pattern {
                DataPattern::Walk1(_) => walk1.push(pc.coverage),
                DataPattern::Walk0(_) => walk0.push(pc.coverage),
                _ => println!(
                    "  {:<16} coverage {:>5.2}  {}",
                    pc.pattern.to_string(),
                    pc.coverage,
                    bar(pc.coverage, 40)
                ),
            }
        }
        let agg = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let min = v.iter().copied().fold(f64::INFINITY, f64::min);
            let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (mean, min, max)
        };
        let (m1, lo1, hi1) = agg(&walk1);
        let (m0, lo0, hi0) = agg(&walk0);
        println!(
            "  {:<16} coverage {m1:>5.2}  {} (min {lo1:.2}, max {hi1:.2})",
            "WALK1[mean]",
            bar(m1, 40)
        );
        println!(
            "  {:<16} coverage {m0:>5.2}  {} (min {lo0:.2}, max {hi0:.2})",
            "WALK0[mean]",
            bar(m0, 40)
        );
        println!(
            "  best coverage pattern: {}; best 40-60% band pattern: {} ({} cells)",
            study.best_coverage().expect("nonempty study").pattern,
            study.best_band().expect("nonempty study").pattern,
            study.best_band().expect("nonempty study").band_cells
        );
        println!();
    }
    println!("paper shape: different patterns find different failure subsets; the");
    println!("best-coverage and best-band patterns differ, and differ by manufacturer");
}
