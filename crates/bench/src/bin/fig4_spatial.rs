//! Figure 4 — spatial distribution of activation failures in a
//! 1024 × 1024 cell array of one chip.
//!
//! The paper's observations to reproduce:
//! 1. failures are confined to a small set of bit columns per subarray,
//!    and the failing-column sets differ between subarrays;
//! 2. within a subarray, failure density increases with the row's
//!    distance from the local sense amplifiers (higher row numbers).

use dram_sim::{DeviceConfig, Manufacturer};
use drange_bench::Scale;
use drange_core::{ProfileSpec, Profiler};
use memctrl::MemoryController;

fn main() {
    let scale = Scale::from_args();
    let iterations = scale.pick(20, 100);
    println!("== Figure 4: spatial distribution of activation failures ==");
    println!("device: manufacturer A, 1024 rows x 1024 bitlines, tRCD = 10 ns, {iterations} iterations\n");

    let mut ctrl = MemoryController::from_config(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(2024)
            .with_noise_seed(7),
    );
    let geometry = ctrl.device().geometry();
    let profile = Profiler::new(&mut ctrl)
        .run(ProfileSpec::bank(0, geometry.rows, geometry.cols).with_iterations(iterations))
        .expect("profiling succeeds");

    let bitmap = profile.bitmap(0, geometry.word_bits);
    let sub_rows = geometry.subarray_rows;

    // Downsampled ASCII bitmap: 32 x 64 blocks.
    println!("failure bitmap (rows down, bitlines across; '#' = any failure in block):");
    let (bh, bw) = (geometry.rows / 32, geometry.bitlines() / 64);
    for br in 0..32 {
        let mut line = String::new();
        for bc in 0..64 {
            let any =
                (br * bh..(br + 1) * bh).any(|r| (bc * bw..(bc + 1) * bw).any(|c| bitmap[r][c]));
            line.push(if any { '#' } else { '.' });
        }
        let marker = if (br * bh) % sub_rows == 0 {
            " <- subarray boundary"
        } else {
            ""
        };
        println!("{line}{marker}");
    }

    // Observation 1: failing columns per subarray.
    println!("\nfailing bit-columns per subarray:");
    for sub in 0..geometry.subarrays() {
        let mut cols: Vec<usize> = (0..geometry.bitlines())
            .filter(|&c| (sub * sub_rows..(sub + 1) * sub_rows).any(|r| bitmap[r][c]))
            .collect();
        cols.sort_unstable();
        println!(
            "  subarray {sub}: {} failing bitlines {:?}",
            cols.len(),
            &cols[..cols.len().min(16)]
        );
    }

    // Observation 2: row gradient within each subarray.
    println!("\nfailure density by row quartile within subarray (cells failing / quartile):");
    for sub in 0..geometry.subarrays() {
        let base = sub * sub_rows;
        let quartile = sub_rows / 4;
        let counts: Vec<usize> = (0..4)
            .map(|q| {
                (base + q * quartile..base + (q + 1) * quartile)
                    .map(|r| bitmap[r].iter().filter(|&&b| b).count())
                    .sum()
            })
            .collect();
        println!(
            "  subarray {sub}: near-SA {:>5} | {:>5} | {:>5} | far-SA {:>5}  {}",
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            if counts[3] >= counts[0] {
                "(gradient: more failures far from sense amps)"
            } else {
                ""
            }
        );
    }

    // Also emit the full-resolution bitmap as a PGM image artifact.
    let pgm_path = std::env::temp_dir().join("drange_fig4.pgm");
    if let Ok(file) = std::fs::File::create(&pgm_path) {
        if dram_sim::pgm::write_pgm(std::io::BufWriter::new(file), &bitmap).is_ok() {
            println!("\nfull-resolution bitmap written to {}", pgm_path.display());
        }
    }

    println!("\ntotal failing cells: {}", profile.unique_failures());
    println!("paper shape: column-localized failures per subarray; density grows toward far rows");
}
