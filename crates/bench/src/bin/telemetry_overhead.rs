//! Telemetry overhead — verifies the no-op-handle claim: instrumented
//! code costs near nothing when no registry is attached.
//!
//! Measures three variants of a hot loop (counter bump + stage timer
//! per iteration):
//!
//! * **bare** — the loop with no instrumentation at all,
//! * **noop** — instrumented with detached handles (the state every
//!   engine spawned without a registry runs in): one `Option`
//!   discriminant branch per call, no clock reads,
//! * **live** — instrumented with registry-backed handles: two clock
//!   reads plus relaxed atomic updates per iteration.
//!
//! The noop column should sit within noise of the bare column; the gap
//! to the live column is the price of actually collecting metrics.
//!
//! ```sh
//! cargo run -p drange-bench --release --bin telemetry_overhead [--full]
//! ```

use std::hint::black_box;
use std::time::Instant;

use drange_bench::Scale;
use drange_telemetry::{Counter, Histogram, MetricsRegistry};

/// The simulated hot path: a little arithmetic standing in for batch
/// processing, then the instrumentation points the engine workers hit
/// per batch.
fn work(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn run_bare(iters: u64) -> (f64, u64) {
    let mut acc = 0u64;
    let t0 = Instant::now();
    for i in 0..iters {
        acc = acc.wrapping_add(black_box(work(i)));
    }
    (t0.elapsed().as_secs_f64(), acc)
}

fn run_instrumented(iters: u64, counter: &Counter, histogram: &Histogram) -> (f64, u64) {
    let mut acc = 0u64;
    let t0 = Instant::now();
    for i in 0..iters {
        let stage_t0 = histogram.start();
        acc = acc.wrapping_add(black_box(work(i)));
        counter.inc();
        histogram.observe_since(stage_t0);
    }
    (t0.elapsed().as_secs_f64(), acc)
}

fn main() {
    let scale = Scale::from_args();
    let iters: u64 = scale.pick(5_000_000, 50_000_000);
    let rounds = 3usize;

    let registry = MetricsRegistry::new();
    let live_counter = registry.counter("bench_iterations_total", &[]);
    let live_histogram = registry.histogram("bench_stage_ns", &[]);
    let noop_counter = Counter::noop();
    let noop_histogram = Histogram::noop();

    println!("{iters} iterations per round, {rounds} rounds, best-of reported:\n");
    let mut best = [f64::INFINITY; 3];
    let mut sink = 0u64;
    for _ in 0..rounds {
        let (bare, a) = run_bare(iters);
        let (noop, b) = run_instrumented(iters, &noop_counter, &noop_histogram);
        let (live, c) = run_instrumented(iters, &live_counter, &live_histogram);
        sink = sink.wrapping_add(a).wrapping_add(b).wrapping_add(c);
        best[0] = best[0].min(bare);
        best[1] = best[1].min(noop);
        best[2] = best[2].min(live);
    }
    let per_iter = |secs: f64| secs / iters as f64 * 1e9;
    println!("variant | total      | per-iteration");
    println!("--------|------------|--------------");
    println!(
        "bare    | {:>8.3} s | {:>9.2} ns",
        best[0],
        per_iter(best[0])
    );
    println!(
        "noop    | {:>8.3} s | {:>9.2} ns",
        best[1],
        per_iter(best[1])
    );
    println!(
        "live    | {:>8.3} s | {:>9.2} ns",
        best[2],
        per_iter(best[2])
    );
    println!(
        "\nnoop overhead vs bare: {:+.2} ns/iter (should be ~0)",
        per_iter(best[1]) - per_iter(best[0])
    );
    println!(
        "live overhead vs bare: {:+.2} ns/iter (clock reads + atomics)",
        per_iter(best[2]) - per_iter(best[0])
    );
    let snap = live_histogram.snapshot();
    println!(
        "\nlive histogram collected {} samples (p50 {} ns); checksum {sink:#x}",
        snap.count,
        snap.p50()
    );
}
