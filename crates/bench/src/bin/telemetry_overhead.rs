//! Telemetry overhead — verifies the no-op-handle claim: instrumented
//! code costs near nothing when no registry is attached.
//!
//! Measures three variants of a hot loop (counter bump + stage timer
//! per iteration):
//!
//! * **bare** — the loop with no instrumentation at all,
//! * **noop** — instrumented with detached handles (the state every
//!   engine spawned without a registry runs in): one `Option`
//!   discriminant branch per call, no clock reads,
//! * **live** — instrumented with registry-backed handles: two clock
//!   reads plus relaxed atomic updates per iteration.
//!
//! The noop column should sit within noise of the bare column; the gap
//! to the live column is the price of actually collecting metrics.
//!
//! The same contract holds for tracing spans. Spans are batch-grained
//! in the engine (one `engine.batch` span guards a whole 4096-bit
//! harvest), so the span variants open one attributed span per
//! [`SPAN_BATCH`]-iteration batch — the per-iteration column shows the
//! amortized cost at realistic granularity, and a separate per-span
//! line shows the raw guard cost:
//!
//! * **span-noop** — spans from `Tracer::noop()` (the state every
//!   server without `--debug-endpoints` runs in): no clock reads, no
//!   allocation, no thread-local pushes,
//! * **span-live** — spans from a flight recorder's tracer: two clock
//!   reads, thread-local context bookkeeping, and ring insertion on
//!   root drop.
//!
//! The span-noop variant is held to the same budget as noop handles:
//! within 5% of bare at batch granularity (reported as a pass/fail
//! line so CI or a human can eyeball regressions).
//!
//! ```sh
//! cargo run -p drange-bench --release --bin telemetry_overhead [--full]
//! ```

use std::hint::black_box;
use std::time::Instant;

use drange_bench::Scale;
use drange_telemetry::{Counter, FlightRecorder, Histogram, MetricsRegistry, Tracer};

/// The simulated hot path: a little arithmetic standing in for batch
/// processing, then the instrumentation points the engine workers hit
/// per batch.
fn work(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn run_bare(iters: u64) -> (f64, u64) {
    let mut acc = 0u64;
    let t0 = Instant::now();
    for i in 0..iters {
        acc = acc.wrapping_add(black_box(work(i)));
    }
    (t0.elapsed().as_secs_f64(), acc)
}

fn run_instrumented(iters: u64, counter: &Counter, histogram: &Histogram) -> (f64, u64) {
    let mut acc = 0u64;
    let t0 = Instant::now();
    for i in 0..iters {
        let stage_t0 = histogram.start();
        acc = acc.wrapping_add(black_box(work(i)));
        counter.inc();
        histogram.observe_since(stage_t0);
    }
    (t0.elapsed().as_secs_f64(), acc)
}

/// Iterations guarded by one span in the span variants — the engine's
/// granularity (one `engine.batch` span per multi-thousand-bit
/// harvest), scaled down conservatively so the amortized numbers err
/// on the pessimistic side.
const SPAN_BATCH: u64 = 256;

/// The batched loop shared by the span variants: `None` runs it with
/// no span at all (the baseline), so the span columns differ from
/// their baseline only in the guard itself, never in loop shape.
fn run_spanned(iters: u64, tracer: Option<&Tracer>) -> (f64, u64) {
    let mut acc = 0u64;
    let t0 = Instant::now();
    let mut i = 0u64;
    while i < iters {
        let mut span = tracer.map(|t| t.span("bench.batch"));
        let end = (i + SPAN_BATCH).min(iters);
        while i < end {
            acc = acc.wrapping_add(black_box(work(i)));
            i += 1;
        }
        if let Some(span) = &mut span {
            span.attr_u64("bits", end);
        }
    }
    (t0.elapsed().as_secs_f64(), acc)
}

fn main() {
    let scale = Scale::from_args();
    let iters: u64 = scale.pick(5_000_000, 50_000_000);
    let rounds = 3usize;

    let registry = MetricsRegistry::new();
    let live_counter = registry.counter("bench_iterations_total", &[]);
    let live_histogram = registry.histogram("bench_stage_ns", &[]);
    let noop_counter = Counter::noop();
    let noop_histogram = Histogram::noop();
    let recorder = FlightRecorder::new();
    let live_tracer = recorder.tracer();
    let noop_tracer = Tracer::noop();

    println!("{iters} iterations per round, {rounds} rounds, best-of reported:\n");
    let mut best = [f64::INFINITY; 6];
    let mut sink = 0u64;
    for _ in 0..rounds {
        let (bare, a) = run_bare(iters);
        let (noop, b) = run_instrumented(iters, &noop_counter, &noop_histogram);
        let (live, c) = run_instrumented(iters, &live_counter, &live_histogram);
        let (span_base, d) = run_spanned(iters, None);
        let (span_noop, e) = run_spanned(iters, Some(&noop_tracer));
        let (span_live, f) = run_spanned(iters, Some(&live_tracer));
        sink = sink
            .wrapping_add(a)
            .wrapping_add(b)
            .wrapping_add(c)
            .wrapping_add(d)
            .wrapping_add(e)
            .wrapping_add(f);
        let round = [bare, noop, live, span_base, span_noop, span_live];
        for (slot, secs) in best.iter_mut().zip(round) {
            *slot = slot.min(secs);
        }
    }
    let per_iter = |secs: f64| secs / iters as f64 * 1e9;
    println!("variant   | total      | per-iteration");
    println!("----------|------------|--------------");
    for (name, secs) in [
        "bare",
        "noop",
        "live",
        "span-base",
        "span-noop",
        "span-live",
    ]
    .iter()
    .zip(best)
    {
        println!("{name:<9} | {secs:>8.3} s | {:>9.2} ns", per_iter(secs));
    }
    println!(
        "\nnoop overhead vs bare:      {:+.2} ns/iter (should be ~0)",
        per_iter(best[1]) - per_iter(best[0])
    );
    println!(
        "live overhead vs bare:      {:+.2} ns/iter (clock reads + atomics)",
        per_iter(best[2]) - per_iter(best[0])
    );
    let spans = iters.div_ceil(SPAN_BATCH);
    let per_span = |secs: f64| (secs - best[3]) / spans as f64 * 1e9;
    println!(
        "span-noop overhead: {:+.2} ns/iter = {:+.2} ns per {SPAN_BATCH}-iter span",
        per_iter(best[4]) - per_iter(best[3]),
        per_span(best[4]),
    );
    println!(
        "span-live overhead: {:+.2} ns/iter = {:+.2} ns per span \
         (clock reads + ring insert)",
        per_iter(best[5]) - per_iter(best[3]),
        per_span(best[5]),
    );
    // The budget the serve path is designed around: span plumbing with
    // no recorder attached must cost < 5% of the uninstrumented loop
    // at batch granularity.
    let span_noop_pct = (best[4] / best[3] - 1.0) * 100.0;
    println!(
        "span-noop vs span-base: {:+.2}% (budget < 5%) — {}",
        span_noop_pct,
        if span_noop_pct < 5.0 { "PASS" } else { "FAIL" }
    );
    let snap = live_histogram.snapshot();
    let trace_stats = recorder.stats();
    println!(
        "\nlive histogram collected {} samples (p50 {} ns); \
         recorder kept {} spans ({} dropped); checksum {sink:#x}",
        snap.count,
        snap.p50(),
        trace_stats.recorded_spans,
        trace_stats.dropped_spans,
    );
}
