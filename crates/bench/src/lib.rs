//! # drange-bench — benchmark harness for the D-RaNGe paper
//!
//! One runnable binary per table and figure of the paper's evaluation:
//!
//! | Target (`cargo run -p drange-bench --release --bin <name>`) | Reproduces |
//! |---|---|
//! | `fig4_spatial` | Figure 4 — spatial distribution of activation failures |
//! | `fig5_dpd` | Figure 5 — data-pattern dependence coverage |
//! | `fig6_temperature` | Figure 6 — F_prob vs temperature scatter |
//! | `sec54_time_stability` | Section 5.4 — F_prob stability over rounds |
//! | `table1_nist` | Table 1 — NIST SP 800-22 results + min entropy |
//! | `fig7_density` | Figure 7 — RNG cells per word per bank |
//! | `fig8_throughput` | Figure 8 — throughput vs bank count |
//! | `table2_comparison` | Table 2 — D-RaNGe vs prior DRAM TRNGs |
//! | `sec73_latency` | Section 7.3 — 64-bit latency scenarios |
//! | `sec73_interference` | Section 7.3 — idle-bandwidth throughput under SPEC |
//! | `sec73_energy` | Section 7.3 — nJ/bit energy accounting |
//! | `trcd_sweep` | Section 7.3 — failure-inducing tRCD range |
//! | `ddr3_validation` | Section 4 — DDR3 cross-validation |
//! | `ablation_postprocess` | Section 2.2 — von Neumann throughput cost |
//! | `duty_cycle` | Section 7.3 — sampling-window vs demand-latency trade-off |
//! | `calibration` | per-chip sampling-tRCD calibration curves |
//! | `engine_scaling` | Sections 6.2/7.3 — multi-channel engine throughput sweep (1–8 workers) |
//! | `telemetry_overhead` | no-op-handle cost check: bare vs noop vs live instrumentation |
//! | `diehard_battery` | DIEHARD-style battery on D-RaNGe output |
//! | `server_load` | `drange-serve` under 1k+ concurrent HTTP clients (req/s, p50/p95/p99) |
//!
//! Every binary accepts `--full` for paper-scale runs and defaults to a
//! quick configuration that completes in seconds. This library hosts
//! the shared fixtures (device fleets, pipeline steps, box-plot
//! statistics, ASCII rendering).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::{bench_report_path, BenchReport};

use dram_sim::{DeviceConfig, Manufacturer};
use drange_core::{IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
use memctrl::MemoryController;

/// Run scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast defaults (seconds).
    Quick,
    /// Paper-scale parameters (minutes).
    Full,
}

impl Scale {
    /// Parses `--full` from the process arguments.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Chooses between the quick and full value.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Deterministic device configurations for a simulated fleet of chips
/// from one manufacturer.
pub fn fleet(manufacturer: Manufacturer, n: usize, base_seed: u64) -> Vec<DeviceConfig> {
    (0..n)
        .map(|i| {
            DeviceConfig::new(manufacturer)
                .with_seed(base_seed.wrapping_add(1 + i as u64 * 0x9E37))
                .with_noise_seed(base_seed.wrapping_add(0xD1CE + i as u64))
        })
        .collect()
}

/// Profile-then-identify pipeline with bench-friendly parameters.
///
/// Returns the controller (for further use) and the catalog.
///
/// # Panics
///
/// Panics on pipeline errors (bench fixtures are infallible by
/// construction).
pub fn pipeline(
    config: DeviceConfig,
    banks: usize,
    rows: usize,
    profile_iters: usize,
    identify_reads: usize,
) -> (MemoryController, RngCellCatalog) {
    let mut ctrl = MemoryController::from_config(config);
    let cols = ctrl.device().geometry().cols;
    let profile = Profiler::new(&mut ctrl)
        .run(
            ProfileSpec {
                banks: (0..banks).collect(),
                rows: 0..rows,
                cols: 0..cols,
                ..ProfileSpec::default()
            }
            .with_iterations(profile_iters),
        )
        // xtask:allow(no-panic) -- bench harness setup over a deterministic simulated device
        .expect("profiling succeeds");
    let catalog = RngCellCatalog::identify(
        &mut ctrl,
        &profile,
        IdentifySpec {
            reads: identify_reads,
            ..IdentifySpec::default()
        },
    )
    // xtask:allow(no-panic) -- bench harness setup over a deterministic simulated device
    .expect("identification succeeds");
    (ctrl, catalog)
}

/// Five-number summary for box-and-whiskers reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes the five-number summary of a sample.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn box_stats(values: &[f64]) -> BoxStats {
    assert!(!values.is_empty(), "box_stats needs at least one value");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
        }
    };
    BoxStats {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: v[v.len() - 1],
    }
}

impl std::fmt::Display for BoxStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.3} | q1 {:.3} | med {:.3} | q3 {:.3} | max {:.3}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Renders a unit-interval value as a fixed-width ASCII bar.
pub fn bar(value: f64, width: usize) -> String {
    let filled = ((value.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Formats bits/s as Mb/s with two decimals.
pub fn mbps(bps: f64) -> String {
    format!("{:.2} Mb/s", bps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn fleet_has_distinct_seeds() {
        let f = fleet(Manufacturer::A, 5, 100);
        let seeds: std::collections::HashSet<u64> = f.iter().map(|c| c.seed()).collect();
        assert_eq!(seeds.len(), 5);
        assert!(f.iter().all(|c| c.manufacturer() == Manufacturer::A));
    }

    #[test]
    fn box_stats_of_known_sample() {
        let s = box_stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn box_stats_single_value() {
        let s = box_stats(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn bar_renders_clamped() {
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 3), "###");
        assert_eq!(bar(-1.0, 3), "...");
    }

    #[test]
    fn pipeline_produces_catalog() {
        let (ctrl, catalog) = pipeline(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(9)
                .with_noise_seed(10),
            2,
            128,
            20,
            1000,
        );
        assert_eq!(ctrl.trcd_ns(), 18.0);
        // A 2-bank, 128-row region generally contains RNG cells; allow
        // emptiness but require the call to succeed structurally.
        let _ = catalog.len();
    }
}
