//! Hot-path cost breakdown: where does the fig8 fast-path ns/READ go?
//!
//! A diagnostic companion to `fig8_throughput` (not part of the bench
//! suite, writes no report): re-times the same steady-state harvest
//! loop, probes how many noise draws a plan READ performs, and
//! micro-times the isolated stages (probit kernel, Bernoulli draw,
//! cache-map probe) so a regression flagged by `cargo xtask
//! bench-gate` can be attributed to a layer. Run with
//! `cargo run -p drange-bench --release --example hotpath_profile`.

use dram_sim::probit::fast_phi;
use dram_sim::{DeviceConfig, DramDevice, Manufacturer, NoiseSource, SeededNoise, WordAddr};
use drange_bench::pipeline;
use drange_core::{DRange, DRangeConfig};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    // -- 1. Full-scale fig8 fast-path harvest loop.
    let config = DeviceConfig::new(Manufacturer::A)
        .with_seed(0xF18)
        .with_noise_seed(0xF19);
    let (mut ctrl, catalog) = pipeline(config, 8, 256, 40, 1000);
    ctrl.device_mut().set_sense_fast_path(true);
    let mut drange = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    drange.harvest_block().expect("first pass");
    // Invalidate resolves so the next pass bulk-resolves exactly the 16
    // plan words: bulk_cells delta / 16 = noise draws per READ.
    let s0 = drange.sense_cache_stats().bulk_cells;
    drange
        .controller_mut()
        .device_mut()
        .set_temperature(dram_sim::Celsius(45.1));
    drange.harvest_block().expect("probe pass");
    let s1 = drange.sense_cache_stats().bulk_cells;
    drange
        .controller_mut()
        .device_mut()
        .set_temperature(dram_sim::Celsius(45.0));
    println!(
        "plan resolve probe: {} bulk cells over 16 words -> {:.1} draws/READ",
        s1 - s0,
        (s1 - s0) as f64 / 16.0
    );
    for _ in 0..62 {
        drange.harvest_block().expect("warmup");
    }
    let cache0 = drange.sense_cache_stats();
    let t0 = Instant::now();
    let mut bits = 0u64;
    let passes = 2000u64;
    for _ in 0..passes {
        bits += drange.harvest_block().expect("pass").len() as u64;
    }
    let wall = t0.elapsed().as_nanos() as f64;
    let cache1 = drange.sense_cache_stats();
    let reads = cache1.sensed_reads() - cache0.sensed_reads();
    println!(
        "harvest loop: {bits} bits, {reads} reads, {:.1} ns/read, {:.1} ns/pass, {:.2} Mb/s",
        wall / reads as f64,
        wall / passes as f64,
        bits as f64 / wall * 1e3
    );
    println!(
        "  cache deltas: classified {} resolve {} hit {} skip {} bulk_cells {} lane {}",
        cache1.classified_words - cache0.classified_words,
        cache1.resolve_reads - cache0.resolve_reads,
        cache1.hit_reads - cache0.hit_reads,
        cache1.skip_word_reads - cache0.skip_word_reads,
        cache1.bulk_cells - cache0.bulk_cells,
        cache1.bulk_lane_cells - cache0.bulk_lane_cells,
    );

    // -- 1b. sample_once only (no pop_block / BitBlock handover).
    let t0 = Instant::now();
    let mut bits = 0u64;
    for _ in 0..passes {
        bits += drange.sample_once().expect("pass") as u64;
        if drange.stats().bits % 4096 == 0 {
            // keep the queue from trimming costs into the loop
        }
    }
    let wall = t0.elapsed().as_nanos() as f64;
    println!(
        "sample_once loop: {bits} bits, {:.1} ns/pass, {:.2} Mb/s",
        wall / passes as f64,
        bits as f64 / wall * 1e3
    );

    // -- 1c. Bare ctrl loop over the REAL planned words (no sampler, no
    // queue, no tRCD reprogram): the floor the sampler layer sits on.
    let words = drange.planned_word_addrs();
    let mut ctrl2 = drange.into_controller();
    ctrl2.set_trcd_ns(10.0);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..passes {
        for w in &words {
            ctrl2.act(w.bank, w.row).unwrap();
            let got = ctrl2.rd(w.bank, w.row, w.col).unwrap();
            acc ^= got;
            if got != 0 {
                ctrl2.wr(w.bank, w.row, w.col, 0).unwrap();
            }
            ctrl2.pre(w.bank).unwrap();
        }
    }
    let wall = t0.elapsed().as_nanos() as f64;
    println!(
        "ctrl loop over planned words: {:.1} ns/read (acc {acc:x})",
        wall / (passes * words.len() as u64) as f64
    );

    // -- 1d. Same planned-words ctrl loop on a FRESH pipeline (small
    // cache map, compact heap): isolates post-harvest state effects.
    let config = DeviceConfig::new(Manufacturer::A)
        .with_seed(0xF18)
        .with_noise_seed(0xF19);
    let (mut ctrl3, _catalog) = pipeline(config, 8, 256, 40, 1000);
    ctrl3.device_mut().set_sense_fast_path(true);
    ctrl3.set_trcd_ns(10.0);
    for _ in 0..64 {
        for w in &words {
            ctrl3.act(w.bank, w.row).unwrap();
            let got = ctrl3.rd(w.bank, w.row, w.col).unwrap();
            ctrl3.wr(w.bank, w.row, w.col, got).unwrap();
            ctrl3.pre(w.bank).unwrap();
        }
    }
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..passes {
        for w in &words {
            ctrl3.act(w.bank, w.row).unwrap();
            let got = ctrl3.rd(w.bank, w.row, w.col).unwrap();
            acc ^= got;
            if got != 0 {
                ctrl3.wr(w.bank, w.row, w.col, 0).unwrap();
            }
            ctrl3.pre(w.bank).unwrap();
        }
    }
    let wall = t0.elapsed().as_nanos() as f64;
    println!(
        "ctrl loop over planned words (fresh pipeline): {:.1} ns/read (acc {acc:x})",
        wall / (passes * words.len() as u64) as f64
    );

    // -- 2. Raw device ACT/RD(+restore WR)/PRE loop on the same geometry.
    let mut dev = DramDevice::build(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(0xF18)
            .with_noise_seed(0xF19),
    );
    dev.set_sense_fast_path(true);
    dev.fill_device(dram_sim::DataPattern::Solid0);
    // Touch a fixed pair of words per bank like Algorithm 2 does.
    let n = 200_000u64;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        let bank = (i % 8) as usize;
        let row = (i % 2) as usize * 7;
        dev.activate(bank, row).unwrap();
        let got = dev.read(bank, row, 3, 10.0).unwrap();
        acc ^= got;
        if got != 0 {
            dev.write(bank, row, 3, 0).unwrap();
        }
        dev.precharge(bank).unwrap();
    }
    let wall = t0.elapsed().as_nanos() as f64;
    println!(
        "device ACT+RD+WR?+PRE: {:.1} ns/read (acc {acc:x})",
        wall / n as f64
    );

    // Same but reads with nominal tRCD (no stochastic cells -> no cache work).
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        let bank = (i % 8) as usize;
        let row = (i % 2) as usize * 7;
        dev.activate(bank, row).unwrap();
        acc ^= dev.read(bank, row, 3, 18.0).unwrap();
        dev.precharge(bank).unwrap();
    }
    let wall = t0.elapsed().as_nanos() as f64;
    println!(
        "device ACT+RD(18ns)+PRE: {:.1} ns/read (acc {acc:x})",
        wall / n as f64
    );

    // -- 2b. Same cycle through the controller (scheduler + telemetry).
    let mut ctrl = memctrl::MemoryController::from_config(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(0xF18)
            .with_noise_seed(0xF19),
    );
    ctrl.device_mut().set_sense_fast_path(true);
    ctrl.device_mut().fill_device(dram_sim::DataPattern::Solid0);
    ctrl.set_trcd_ns(10.0);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        let bank = (i % 8) as usize;
        let row = (i % 2) as usize * 7;
        ctrl.act(bank, row).unwrap();
        let got = ctrl.rd(bank, row, 3).unwrap();
        acc ^= got;
        if got != 0 {
            ctrl.wr(bank, row, 3, 0).unwrap();
        }
        ctrl.pre(bank).unwrap();
    }
    let wall = t0.elapsed().as_nanos() as f64;
    println!(
        "ctrl ACT+RD+WR?+PRE: {:.1} ns/read (acc {acc:x})",
        wall / n as f64
    );

    // 2c. Add the per-pass tRCD program/reset (every 16 reads) like
    // sample_once does.
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        if i % 16 == 0 {
            ctrl.try_set_trcd_ns(10.0).unwrap();
        }
        let bank = (i % 8) as usize;
        let row = (i % 2) as usize * 7;
        ctrl.act(bank, row).unwrap();
        let got = ctrl.rd(bank, row, 3).unwrap();
        acc ^= got;
        if got != 0 {
            ctrl.wr(bank, row, 3, 0).unwrap();
        }
        ctrl.pre(bank).unwrap();
        if i % 16 == 15 {
            ctrl.reset_trcd();
        }
    }
    let wall = t0.elapsed().as_nanos() as f64;
    println!(
        "ctrl loop + tRCD program per 16: {:.1} ns/read (acc {acc:x})",
        wall / n as f64
    );

    // 2d. Unconditional WR every cycle (the harvest reality: RNG words
    // fail most reads, so the restore write almost always issues).
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        let bank = (i % 8) as usize;
        let row = (i % 2) as usize * 7;
        ctrl.act(bank, row).unwrap();
        acc ^= ctrl.rd(bank, row, 3).unwrap();
        ctrl.wr(bank, row, 3, 0).unwrap();
        ctrl.pre(bank).unwrap();
    }
    let wall = t0.elapsed().as_nanos() as f64;
    println!(
        "ctrl ACT+RD+WR(always)+PRE: {:.1} ns/read (acc {acc:x})",
        wall / n as f64
    );

    // -- 3. Noise draws.
    let mut noise = SeededNoise::new(42);
    let m = 10_000_000u64;
    let t0 = Instant::now();
    let mut s = 0.0f64;
    for _ in 0..m {
        s += noise.uniform();
    }
    println!(
        "SeededNoise::uniform: {:.2} ns/draw (s {s:.1}) ",
        t0.elapsed().as_nanos() as f64 / m as f64
    );

    // -- 4. fast_phi.
    let t0 = Instant::now();
    let mut s = 0.0f64;
    for i in 0..m {
        s += fast_phi(-3.0 + (i % 1000) as f64 * 0.006);
    }
    println!(
        "fast_phi: {:.2} ns/call (s {s:.1})",
        t0.elapsed().as_nanos() as f64 / m as f64
    );

    // -- 4b. Probe cost: 16 fixed keys in a 32768-entry map whose
    // values hold heap Vecs (the steady-state sense-cache shape) vs the
    // same probes against a 16-entry map.
    struct FakeState {
        ps: Vec<f64>,
        hot_bits: Vec<u8>,
        flag: bool,
    }
    for entries in [16usize, 32768] {
        let mut map: HashMap<WordAddr, FakeState> = HashMap::new();
        for i in 0..entries {
            map.insert(
                WordAddr {
                    bank: i % 8,
                    row: (i / 8) % 256,
                    col: (i / 2048) % 16,
                },
                FakeState {
                    ps: vec![0.001; 5],
                    hot_bits: vec![0, 1, 2, 3, 4],
                    flag: true,
                },
            );
        }
        let probe: Vec<WordAddr> = (0..16)
            .map(|i| WordAddr {
                bank: i % 8,
                row: (i / 8) % 256,
                col: 0,
            })
            .collect();
        let t0 = Instant::now();
        let mut s = 0.0f64;
        let reps = 1_000_000u64;
        for r in 0..reps {
            let w = &probe[(r % 16) as usize];
            let st = map.get_mut(w).unwrap();
            st.flag = !st.flag;
            for (&p, &b) in st.ps.iter().zip(st.hot_bits.iter()) {
                s += p * b as f64;
            }
        }
        println!(
            "map probe + ps walk ({entries} entries): {:.2} ns (s {s:.1})",
            t0.elapsed().as_nanos() as f64 / reps as f64
        );
    }

    // -- 5. HashMap<WordAddr, u64> lookup (SipHash) vs plain Vec index.
    let mut map: HashMap<WordAddr, u64> = HashMap::new();
    let keys: Vec<WordAddr> = (0..16)
        .map(|i| WordAddr {
            bank: i % 8,
            row: (i % 2) * 7,
            col: 3,
        })
        .collect();
    for (i, k) in keys.iter().enumerate() {
        map.insert(*k, i as u64);
    }
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..m {
        acc ^= map[&keys[(i % 16) as usize]];
    }
    println!(
        "HashMap lookup: {:.2} ns/get (acc {acc})",
        t0.elapsed().as_nanos() as f64 / m as f64
    );
}
