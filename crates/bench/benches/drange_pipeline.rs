//! Criterion macro-benchmarks of the D-RaNGe pipeline stages
//! (host-side simulation cost).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dram_sim::{DeviceConfig, Manufacturer};
use drange_bench::pipeline;
use drange_core::{DRange, DRangeConfig, ProfileSpec, Profiler};
use memctrl::MemoryController;

fn config() -> DeviceConfig {
    DeviceConfig::new(Manufacturer::A)
        .with_seed(5)
        .with_noise_seed(6)
}

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("profile_64rows_1iter", |b| {
        let mut ctrl = MemoryController::from_config(config());
        b.iter(|| {
            Profiler::new(&mut ctrl)
                .run(
                    ProfileSpec {
                        rows: 0..64,
                        ..ProfileSpec::default()
                    }
                    .with_iterations(1),
                )
                .unwrap()
        })
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let (ctrl, catalog) = pipeline(config(), 8, 256, 20, 1000);
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let bpi = trng.bits_per_iteration().max(1) as u64;
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(bpi));
    group.bench_function("sample_once", |b| b.iter(|| trng.sample_once().unwrap()));
    group.finish();
}

criterion_group!(benches, bench_profiling, bench_sampling);
criterion_main!(benches);
