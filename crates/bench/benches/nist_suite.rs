//! Criterion micro-benchmarks of the NIST SP 800-22 implementation
//! (host-side cost per test over a 100 Kb stream).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nist_sts::Bits;

fn stream(n: usize) -> Bits {
    let mut state = 0x1234_5678u64;
    Bits::from_fn(n, |_| {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 1 == 1
    })
}

fn bench_tests(c: &mut Criterion) {
    let bits = stream(100_000);
    let mut group = c.benchmark_group("nist_100kb");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("monobit", |b| {
        b.iter(|| nist_sts::monobit::test(&bits).unwrap())
    });
    group.bench_function("runs", |b| b.iter(|| nist_sts::runs::test(&bits).unwrap()));
    group.bench_function("matrix_rank", |b| {
        b.iter(|| nist_sts::matrix_rank::test(&bits).unwrap())
    });
    group.bench_function("dft", |b| b.iter(|| nist_sts::dft::test(&bits).unwrap()));
    group.bench_function("serial", |b| {
        b.iter(|| nist_sts::serial::test(&bits).unwrap())
    });
    group.bench_function("linear_complexity", |b| {
        b.iter(|| nist_sts::linear_complexity::test(&bits).unwrap())
    });
    group.bench_function("cumulative_sums", |b| {
        b.iter(|| nist_sts::cumulative_sums::test(&bits).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tests
}
criterion_main!(benches);
