//! Criterion micro-benchmarks of the simulation substrate: the device
//! failure-read path and the command scheduler (host-side cost, not
//! modeled device time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dram_sim::commands::CommandKind;
use dram_sim::{DataPattern, DeviceConfig, DramDevice, Manufacturer, TimingParams};
use memctrl::CommandScheduler;

fn bench_device_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("device");
    group.throughput(Throughput::Elements(1));
    let mut device = DramDevice::build(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(1)
            .with_noise_seed(2),
    );
    device.fill_bank(0, DataPattern::Solid0);
    let mut row = 0usize;
    group.bench_function("fresh_read_reduced_trcd", |b| {
        b.iter(|| {
            row = (row + 1) % 1024;
            device.activate(0, row).unwrap();
            let w = device.read(0, row, 3, 10.0).unwrap();
            device.precharge(0).unwrap();
            std::hint::black_box(w)
        })
    });
    group.bench_function("fresh_read_spec_trcd", |b| {
        b.iter(|| {
            row = (row + 1) % 1024;
            device.activate(0, row).unwrap();
            let w = device.read(0, row, 3, 18.0).unwrap();
            device.precharge(0).unwrap();
            std::hint::black_box(w)
        })
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.throughput(Throughput::Elements(4));
    let mut sched = CommandScheduler::new(8, TimingParams::lpddr4_3200());
    let mut bank = 0usize;
    group.bench_function("act_rd_wr_pre_cycle", |b| {
        b.iter(|| {
            bank = (bank + 1) % 8;
            sched.issue(CommandKind::Act, bank, 0, 0).unwrap();
            sched.issue(CommandKind::Rd, bank, 0, 0).unwrap();
            sched.issue(CommandKind::Wr, bank, 0, 0).unwrap();
            sched.issue(CommandKind::Pre, bank, 0, 0).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_device_reads, bench_scheduler);
criterion_main!(benches);
