//! Property-based tests of the sensing cache: under arbitrary
//! interleavings of data writes, temperature changes, timing-register
//! changes, and reduced-tRCD sensing, the memoizing fast path must stay
//! bit-identical to the uncached oracle, and each invalidation source
//! (write, temperature, tRCD) must actually force fresh state.

use dram_sim::{CellAddr, DeviceConfig, DramDevice, Geometry, Manufacturer, WordAddr};
use proptest::prelude::*;

const TRCDS: [f64; 3] = [9.5, 10.0, 10.5];

fn small_geometry() -> Geometry {
    Geometry {
        banks: 2,
        rows: 32,
        cols: 4,
        word_bits: 64,
        subarray_rows: 16,
    }
}

/// A fast-path device and its uncached oracle twin: same manufacturing
/// seed, same noise seed, so their output streams must stay identical.
fn device_pair(man: Manufacturer, seed: u64) -> (DramDevice, DramDevice) {
    let config = DeviceConfig::new(man)
        .with_seed(seed)
        .with_noise_seed(seed ^ 0x5EED)
        .with_geometry(small_geometry());
    let fast = DramDevice::build(config.clone());
    let mut slow = DramDevice::build(config);
    slow.set_sense_fast_path(false);
    (fast, slow)
}

/// One abstract step of the interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Direct data mutation (no protocol constraints).
    Poke(u8, u8, u8, u64),
    /// Temperature step (resolve-epoch invalidation).
    Temp(u8),
    /// Timing-register change (classification re-key).
    Trcd(u8),
    /// One ACT → READ-all-columns → PRE burst at a reduced tRCD.
    Sense(u8, u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..2, 0u8..32, 0u8..4, any::<u64>()).prop_map(|(b, r, c, v)| Op::Poke(b, r, c, v)),
        (0u8..5).prop_map(Op::Temp),
        (0u8..3).prop_map(Op::Trcd),
        (0u8..2, 0u8..32, 0u8..3).prop_map(|(b, r, t)| Op::Sense(b, r, t)),
    ]
}

fn apply(device: &mut DramDevice, op: Op) -> Vec<u64> {
    match op {
        Op::Poke(b, r, c, v) => {
            device
                .poke(WordAddr::new(b as usize, r as usize, c as usize), v)
                .expect("in-range poke");
            Vec::new()
        }
        Op::Temp(k) => {
            device.set_temperature((25.0 + 10.0 * k as f64).into());
            Vec::new()
        }
        Op::Trcd(k) => {
            device.notify_timing_change(TRCDS[k as usize]);
            Vec::new()
        }
        Op::Sense(b, r, t) => {
            // One ACT per column: sensing happens only on the first
            // READ after ACT, so this drives the failure path (and the
            // cache) for every word of the row.
            let (b, r) = (b as usize, r as usize);
            (0..small_geometry().cols)
                .map(|c| {
                    device.activate(b, r).expect("bank closed");
                    let word = device.read(b, r, c, TRCDS[t as usize]).expect("open row");
                    device.precharge(b).expect("bank open");
                    word
                })
                .collect()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seed-for-seed equivalence under arbitrary interleavings: every
    /// sensed word, every stored word, and every ground-truth failure
    /// probability must match the uncached oracle exactly.
    #[test]
    fn fast_path_matches_oracle_under_random_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        seed in 0u64..24,
        man_pick in 0usize..3,
    ) {
        let man = [Manufacturer::A, Manufacturer::B, Manufacturer::C][man_pick];
        let (mut fast, mut slow) = device_pair(man, seed);
        for (i, &op) in ops.iter().enumerate() {
            let a = apply(&mut fast, op);
            let b = apply(&mut slow, op);
            prop_assert_eq!(a, b, "divergence at step {} ({:?})", i, op);
        }
        let g = small_geometry();
        for bank in 0..g.banks {
            for row in 0..g.rows {
                for col in 0..g.cols {
                    let addr = WordAddr::new(bank, row, col);
                    prop_assert_eq!(fast.peek(addr), slow.peek(addr));
                }
            }
        }
        for bit in (0..64).step_by(11) {
            let cell = CellAddr::new(0, 3, 1, bit);
            let pf = fast.failure_probability(cell, 10.0);
            let ps = slow.failure_probability(cell, 10.0);
            prop_assert_eq!(pf.to_bits(), ps.to_bits(), "ground truth moved");
        }
    }

    /// Each invalidation source forces fresh cache state: a sub-guard
    /// tRCD change forces reclassification of a previously classified
    /// word, and a temperature change or neighbor write forces the next
    /// non-skip READ off the memoized-hit path.
    #[test]
    fn write_temp_and_trcd_changes_each_force_reclassification(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        seed in 0u64..24,
        row in 0u8..32,
    ) {
        let (mut fast, _slow) = device_pair(Manufacturer::A, seed);
        for &op in &ops {
            let _ = apply(&mut fast, op);
        }
        let row = row as usize;
        // Sensing happens only on the first READ after ACT, so touch
        // every column of the row with its own activation burst.
        let sense = |d: &mut DramDevice, trcd: f64| {
            for c in 0..small_geometry().cols {
                d.activate(0, row).expect("bank closed");
                d.read(0, row, c, trcd).expect("open row");
                d.precharge(0).expect("bank open");
            }
        };
        // Establish classification + resolution at 10 ns.
        fast.notify_timing_change(10.0);
        sense(&mut fast, 10.0);
        sense(&mut fast, 10.0);

        // tRCD change → the whole row reclassifies on next touch.
        let before = fast.sense_cache_stats();
        fast.notify_timing_change(9.5);
        sense(&mut fast, 9.5);
        let after = fast.sense_cache_stats();
        prop_assert!(
            after.classified_words >= before.classified_words + small_geometry().cols as u64,
            "tRCD change must reclassify every word of the row: {before:?} -> {after:?}"
        );

        // Temperature change → no READ may be served as a memoized hit
        // until re-resolved (skip-mask answers are temperature-free and
        // legitimately survive).
        let before = fast.sense_cache_stats();
        fast.set_temperature(85.0.into());
        sense(&mut fast, 9.5);
        let after = fast.sense_cache_stats();
        prop_assert_eq!(after.hit_reads, before.hit_reads, "stale hit after temp change");
        prop_assert_eq!(after.classified_words, before.classified_words);

        // Data write next to a word → context snapshot mismatch forces
        // re-resolution; again no stale memoized hit may be served.
        sense(&mut fast, 9.5); // settle back onto the hit/skip path
        let before = fast.sense_cache_stats();
        for c in 0..small_geometry().cols {
            fast.poke(WordAddr::new(0, row, c), 0xDEAD_BEEF_0BAD_F00D)
                .expect("in-range poke");
        }
        sense(&mut fast, 9.5);
        let after = fast.sense_cache_stats();
        prop_assert_eq!(after.hit_reads, before.hit_reads, "stale hit after data write");
    }
}
