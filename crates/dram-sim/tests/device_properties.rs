//! Property-based tests of the device model's protocol state machine
//! and physics invariants.

use dram_sim::{
    CellAddr, DataPattern, DeviceConfig, DramDevice, DramError, Geometry, Manufacturer, WordAddr,
};
use proptest::prelude::*;

fn small_device(seed: u64) -> DramDevice {
    DramDevice::build(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(seed)
            .with_noise_seed(seed ^ 0xABCD)
            .with_geometry(Geometry {
                banks: 4,
                rows: 64,
                cols: 4,
                word_bits: 64,
                subarray_rows: 32,
            }),
    )
}

/// An abstract protocol operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Act(u8, u8),
    Pre(u8),
    Rd(u8, u8, u8),
    Wr(u8, u8, u8, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u8..64).prop_map(|(b, r)| Op::Act(b, r)),
        (0u8..4).prop_map(Op::Pre),
        (0u8..4, 0u8..64, 0u8..4).prop_map(|(b, r, c)| Op::Rd(b, r, c)),
        (0u8..4, 0u8..64, 0u8..4, any::<u64>()).prop_map(|(b, r, c, v)| Op::Wr(b, r, c, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any operation sequence either succeeds or returns a documented
    /// protocol error — never a panic — and the device's open-row
    /// bookkeeping exactly mirrors a reference model.
    #[test]
    fn protocol_state_machine_matches_reference(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        seed in 0u64..50,
    ) {
        let mut device = small_device(seed);
        let mut reference: [Option<usize>; 4] = [None; 4];
        for op in ops {
            match op {
                Op::Act(b, r) => {
                    let (b, r) = (b as usize, r as usize);
                    let result = device.activate(b, r);
                    match reference[b] {
                        None => {
                            prop_assert!(result.is_ok());
                            reference[b] = Some(r);
                        }
                        Some(open) => prop_assert_eq!(
                            result,
                            Err(DramError::BankAlreadyOpen { bank: b, open_row: open })
                        ),
                    }
                }
                Op::Pre(b) => {
                    let b = b as usize;
                    let result = device.precharge(b);
                    if reference[b].is_some() {
                        prop_assert!(result.is_ok());
                        reference[b] = None;
                    } else {
                        prop_assert_eq!(result, Err(DramError::BankNotOpen { bank: b }));
                    }
                }
                Op::Rd(b, r, c) => {
                    let (b, r, c) = (b as usize, r as usize, c as usize);
                    let result = device.read(b, r, c, 18.0);
                    match reference[b] {
                        Some(open) if open == r => prop_assert!(result.is_ok()),
                        Some(open) => prop_assert_eq!(
                            result,
                            Err(DramError::WrongOpenRow { bank: b, requested: r, open_row: open })
                        ),
                        None => prop_assert_eq!(result, Err(DramError::BankNotOpen { bank: b })),
                    }
                }
                Op::Wr(b, r, c, v) => {
                    let (b, r, c) = (b as usize, r as usize, c as usize);
                    let result = device.write(b, r, c, v);
                    match reference[b] {
                        Some(open) if open == r => prop_assert!(result.is_ok()),
                        Some(open) => prop_assert_eq!(
                            result,
                            Err(DramError::WrongOpenRow { bank: b, requested: r, open_row: open })
                        ),
                        None => prop_assert_eq!(result, Err(DramError::BankNotOpen { bank: b })),
                    }
                }
            }
            // The device agrees with the reference at every step.
            for bank in 0..4 {
                prop_assert_eq!(device.open_row(bank), reference[bank]);
            }
        }
    }

    /// poke/peek round-trips through the word mask for all addresses.
    #[test]
    fn poke_peek_round_trip(
        bank in 0usize..4,
        row in 0usize..64,
        col in 0usize..4,
        value in any::<u64>(),
        seed in 0u64..20,
    ) {
        let mut device = small_device(seed);
        device.poke(WordAddr::new(bank, row, col), value).unwrap();
        prop_assert_eq!(device.peek(WordAddr::new(bank, row, col)).unwrap(), value);
    }

    /// Protocol write-then-spec-read returns the written value even
    /// after arbitrary prior reduced-tRCD traffic on the same bank.
    #[test]
    fn write_survives_reduced_trcd_traffic(
        row in 0usize..64,
        col in 0usize..4,
        value in any::<u64>(),
        noise_rows in proptest::collection::vec(0usize..64, 0..10),
        seed in 0u64..20,
    ) {
        let mut device = small_device(seed);
        device.fill_bank(0, DataPattern::Checkered);
        // Reduced-tRCD noise traffic.
        for r in noise_rows {
            device.activate(0, r).unwrap();
            let _ = device.read(0, r, 0, 9.0).unwrap();
            device.precharge(0).unwrap();
        }
        device.activate(0, row).unwrap();
        device.write(0, row, col, value).unwrap();
        device.precharge(0).unwrap();
        device.activate(0, row).unwrap();
        let got = device.read(0, row, col, 18.0).unwrap();
        device.precharge(0).unwrap();
        prop_assert_eq!(got, value);
    }

    /// Failure probabilities respect temperature monotonicity on
    /// average over a row (the Figure 6 direction).
    #[test]
    fn hotter_never_reduces_row_average_fprob(row in 0usize..64, seed in 0u64..20) {
        use dram_sim::Celsius;
        let mut device = small_device(seed);
        device.fill_bank(0, DataPattern::Solid0);
        let avg = |d: &DramDevice| -> f64 {
            (0..4)
                .flat_map(|c| (0..64).map(move |b| (c, b)))
                .map(|(c, b)| d.failure_probability(CellAddr::new(0, row, c, b), 10.0))
                .sum::<f64>()
                / 256.0
        };
        let cool = avg(&device);
        device.set_temperature(Celsius(70.0));
        let hot = avg(&device);
        // Individual cells may go either way (negative sensitivities);
        // the row average must not *decrease* materially.
        prop_assert!(hot >= cool - 0.01, "cool {cool} hot {hot}");
    }
}
