//! SIMD equivalence suite: the four-lane probit kernels and the bulk
//! SoA resolve path must be *bit-identical* to the scalar path — same
//! sensed output stream, same memoized failure probabilities — across
//! random seeds, manufacturers, temperatures, and word-run lengths
//! (including the non-multiple-of-four remainder the vector loop hands
//! to the scalar kernel).

use dram_sim::probit::{fast_erfc, fast_erfc4, fast_phi, fast_phi4, LANES};
use dram_sim::{CellAddr, DeviceConfig, DramDevice, Geometry, Manufacturer, WordAddr};
use proptest::prelude::*;

/// Reduced-tRCD latencies below every profile's guard band, so READs
/// sense and `resolve_run` is live.
const TRCDS: [f64; 3] = [9.5, 10.0, 10.5];

fn small_geometry() -> Geometry {
    Geometry {
        banks: 2,
        rows: 32,
        cols: 4,
        word_bits: 64,
        subarray_rows: 16,
    }
}

/// A vectorized fast-path device and its scalar oracle twin: same
/// manufacturing seed, same noise seed, so any arithmetic divergence
/// between the lane kernel and the scalar kernel shows up as a
/// different output stream.
fn device_pair(man: Manufacturer, seed: u64) -> (DramDevice, DramDevice) {
    let config = DeviceConfig::new(man)
        .with_seed(seed)
        .with_noise_seed(seed ^ 0x51D0)
        .with_geometry(small_geometry());
    let fast = DramDevice::build(config.clone());
    let mut slow = DramDevice::build(config);
    slow.set_sense_fast_path(false);
    (fast, slow)
}

/// Kernel arguments the failure model can produce (|x| ≲ 8 for stock
/// profiles), the Cody region boundaries where the lane dispatch
/// switches expression trees, and far-tail magnitudes.
fn arg_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -26.0f64..26.0,
        2 => -400.0f64..400.0,
        1 => Just(0.0),
        1 => Just(-0.0),
        1 => Just(0.46875),
        1 => Just(-0.46875),
        1 => Just(4.0),
        1 => Just(-4.0),
        1 => -1e-6f64..1e-6,
    ]
}

/// The bulk-resolve chunking contract, restated: full four-wide lane
/// groups through the vector kernel, the remainder through the scalar
/// one (exactly what `SenseCache::resolve_words` does to a gathered
/// SoA argument run).
fn resolve_chunked(args: &[f64]) -> Vec<f64> {
    let n = args.len();
    let mut out = vec![0.0; n];
    let full = n - n % LANES;
    let mut i = 0;
    while i < full {
        let o = fast_phi4([args[i], args[i + 1], args[i + 2], args[i + 3]]);
        out[i..i + LANES].copy_from_slice(&o);
        i += LANES;
    }
    for j in full..n {
        out[j] = fast_phi(args[j]);
    }
    out
}

/// One abstract step of the paired-device interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Bulk-prefetch the plan of a whole row (`resolve_run`) — the
    /// vectorized path on the fast device, a contractual no-op on the
    /// scalar twin.
    Plan(u8, u8, u8),
    /// One ACT → READ → PRE burst per column at a reduced tRCD.
    Sense(u8, u8, u8),
    /// Temperature step: invalidates every memoized probability, so
    /// the next Plan re-runs the bulk kernel over fresh margins.
    Temp(u8),
    /// Direct data mutation (context snapshot change).
    Poke(u8, u8, u8, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (0u8..2, 0u8..32, 0u8..3).prop_map(|(b, r, t)| Op::Plan(b, r, t)),
        3 => (0u8..2, 0u8..32, 0u8..3).prop_map(|(b, r, t)| Op::Sense(b, r, t)),
        1 => (0u8..5).prop_map(Op::Temp),
        1 => (0u8..2, 0u8..32, 0u8..4, any::<u64>()).prop_map(|(b, r, c, v)| Op::Poke(b, r, c, v)),
    ]
}

fn row_plan(bank: u8, row: u8) -> Vec<WordAddr> {
    (0..small_geometry().cols)
        .map(|c| WordAddr::new(bank as usize, row as usize, c))
        .collect()
}

fn apply(device: &mut DramDevice, op: Op) -> Vec<u64> {
    match op {
        Op::Plan(b, r, t) => {
            device.resolve_run(&row_plan(b, r), TRCDS[t as usize]);
            Vec::new()
        }
        Op::Sense(b, r, t) => {
            let (b, r) = (b as usize, r as usize);
            (0..small_geometry().cols)
                .map(|c| {
                    device.activate(b, r).expect("bank closed");
                    let word = device.read(b, r, c, TRCDS[t as usize]).expect("open row");
                    device.precharge(b).expect("bank open");
                    word
                })
                .collect()
        }
        Op::Temp(k) => {
            device.set_temperature((25.0 + 10.0 * k as f64).into());
            Vec::new()
        }
        Op::Poke(b, r, c, v) => {
            device
                .poke(WordAddr::new(b as usize, r as usize, c as usize), v)
                .expect("in-range poke");
            Vec::new()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every lane of the four-wide erfc/Φ kernels returns the exact
    /// bits of the scalar kernel, including mixed-region lane groups
    /// (where the vector path falls back to per-lane dispatch) and the
    /// reflection of negative arguments.
    #[test]
    fn lane_kernels_match_scalar_bit_for_bit(
        lanes in (arg_strategy(), arg_strategy(), arg_strategy(), arg_strategy()),
    ) {
        let x = [lanes.0, lanes.1, lanes.2, lanes.3];
        let e4 = fast_erfc4(x);
        let p4 = fast_phi4(x);
        for l in 0..LANES {
            prop_assert_eq!(
                e4[l].to_bits(),
                fast_erfc(x[l]).to_bits(),
                "erfc lane {} diverged at x = {:?}", l, x[l]
            );
            prop_assert_eq!(
                p4[l].to_bits(),
                fast_phi(x[l]).to_bits(),
                "phi lane {} diverged at x = {:?}", l, x[l]
            );
        }
    }

    /// Argument runs of *any* length — lane groups plus a 1–3 cell
    /// scalar remainder — resolve to exactly the all-scalar result, so
    /// a word run's probabilities cannot depend on how the gather
    /// happened to align against the lane width.
    #[test]
    fn word_runs_of_any_length_match_scalar(
        args in proptest::collection::vec(arg_strategy(), 1..40),
    ) {
        let chunked = resolve_chunked(&args);
        for (i, (&c, &a)) in chunked.iter().zip(args.iter()).enumerate() {
            prop_assert_eq!(
                c.to_bits(),
                fast_phi(a).to_bits(),
                "cell {} of a {}-cell run (remainder {})",
                i, args.len(), args.len() % LANES
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Paired-device equivalence across random seeds, manufacturers,
    /// and temperature schedules: interleaving bulk vectorized
    /// prefetches (`resolve_run`), reduced-tRCD sensing, temperature
    /// steps, and data writes, the vectorized device's sensed output
    /// must stay bit-identical to the scalar oracle's, and the ground
    /// truth `failure_probability` must not move by a single bit.
    #[test]
    fn vectorized_device_matches_scalar_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        seed in 0u64..32,
        man_pick in 0usize..3,
    ) {
        let man = Manufacturer::ALL[man_pick];
        let (mut fast, mut slow) = device_pair(man, seed);
        for (i, &op) in ops.iter().enumerate() {
            let a = apply(&mut fast, op);
            let b = apply(&mut slow, op);
            prop_assert_eq!(a, b, "divergence at step {} ({:?})", i, op);
        }
        for bit in (0..64).step_by(7) {
            for t in TRCDS {
                let cell = CellAddr::new(1, 5, 2, bit);
                let pf = fast.failure_probability(cell, t);
                let ps = slow.failure_probability(cell, t);
                prop_assert_eq!(
                    pf.to_bits(),
                    ps.to_bits(),
                    "failure_probability moved at bit {} trcd {}", bit, t
                );
            }
        }
    }
}

/// Deterministic remainder-lane coverage: find a seed whose first
/// bulk resolve gathers a cell count that is *not* a multiple of the
/// lane width, so the run provably exercised both the vector groups
/// and the scalar remainder — then check the sensed stream against
/// the scalar oracle.
#[test]
fn bulk_resolve_covers_remainder_lanes_and_stays_equivalent() {
    let mut covered = false;
    for seed in 0..64u64 {
        let (mut fast, mut slow) = device_pair(Manufacturer::A, seed);
        for row in 0..8u8 {
            fast.resolve_run(&row_plan(0, row), 10.0);
            slow.resolve_run(&row_plan(0, row), 10.0);
        }
        let stats = fast.sense_cache_stats();
        if stats.bulk_cells == 0 || stats.bulk_cells % LANES as u64 == 0 {
            continue;
        }
        assert!(
            stats.bulk_cells > stats.bulk_lane_cells,
            "a non-multiple-of-{LANES} gather must leave a scalar remainder"
        );
        for row in 0..8u8 {
            let a = apply(&mut fast, Op::Sense(0, row, 1));
            let b = apply(&mut slow, Op::Sense(0, row, 1));
            assert_eq!(a, b, "seed {seed} row {row} diverged after bulk resolve");
        }
        covered = true;
        break;
    }
    assert!(
        covered,
        "no seed in 0..64 produced a remainder-lane gather — geometry too regular?"
    );
}
