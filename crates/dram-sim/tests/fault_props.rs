//! Property-based tests of the environmental fault layer: failure
//! probability must drift monotonically with temperature (the Section
//! 5.3 direction), every margin-affecting schedule step must fire the
//! sensing cache's resolve-epoch invalidation, and the memoizing fast
//! path must stay bit-identical to the uncached oracle under arbitrary
//! interleavings of schedule steps and reduced-tRCD sensing.

use dram_sim::variation::cell_latents;
use dram_sim::{
    CellAddr, Celsius, DataPattern, DeviceConfig, DramDevice, EnvSchedule, Geometry, Manufacturer,
    WordAddr,
};
use proptest::prelude::*;

fn small_geometry() -> Geometry {
    Geometry {
        banks: 2,
        rows: 32,
        cols: 4,
        word_bits: 64,
        subarray_rows: 16,
    }
}

fn device(seed: u64) -> DramDevice {
    let mut d = DramDevice::build(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(seed)
            .with_noise_seed(seed ^ 0xFA17)
            .with_geometry(small_geometry()),
    );
    d.fill_bank(0, DataPattern::Solid0);
    d
}

/// A fast-path device and its uncached oracle twin.
fn device_pair(seed: u64) -> (DramDevice, DramDevice) {
    let fast = device(seed);
    let mut slow = device(seed);
    slow.set_sense_fast_path(false);
    (fast, slow)
}

/// One abstract step: advance the environment or sense a row.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Apply the next event of the fault schedule.
    Env,
    /// One ACT → READ-all-columns → PRE burst at a reduced tRCD.
    Sense(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Env),
        5 => (0u8..2, 0u8..32).prop_map(|(b, r)| Op::Sense(b, r)),
    ]
}

/// A chaos schedule touching every fault class: a step shock, a ramp,
/// a margin-stealing noise burst, aging on a deterministic 20% of the
/// scanned cells, and a stuck-at pair.
fn chaos_schedule(seed: u64) -> EnvSchedule {
    let g = small_geometry();
    let cells: Vec<CellAddr> = (0..g.rows)
        .flat_map(|row| (0..g.word_bits).map(move |bit| CellAddr::new(0, row, bit % 4, bit)))
        .collect();
    let schedule = EnvSchedule::new(seed);
    let aged = schedule.select_fraction(&cells, 0.2);
    let stuck = schedule.select_fraction(&cells, 0.02);
    schedule
        .shock(20.0)
        .hold(1)
        .noise_burst(-0.015, 2)
        .age_cells(&aged, 0.05)
        .stuck_at(&stuck, true)
        .ramp(-20.0, 4)
        .clear_stuck(&stuck)
}

fn apply(device: &mut DramDevice, schedule: &mut EnvSchedule, op: Op) -> Vec<u64> {
    match op {
        Op::Env => {
            schedule.step(device).expect("in-range schedule cells");
            Vec::new()
        }
        Op::Sense(b, r) => {
            let (b, r) = (b as usize, r as usize);
            (0..small_geometry().cols)
                .map(|c| {
                    device.activate(b, r).expect("bank closed");
                    let word = device.read(b, r, c, 10.0).expect("open row");
                    device.precharge(b).expect("bank open");
                    word
                })
                .collect()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Section 5.3 direction: for any cell whose temperature
    /// sensitivity is positive (the overwhelming majority — the latent
    /// is 1 + sd·gauss), the analytic failure probability is monotone
    /// nondecreasing in temperature.
    #[test]
    fn failure_probability_is_monotone_in_temperature(
        seed in 0u64..16,
        row in 0u8..32,
        col in 0u8..4,
        bit in 0u8..64,
        t_lo in 20.0f64..70.0,
        dt in 0.5f64..30.0,
    ) {
        let d = device(seed);
        let cell = CellAddr::new(0, row as usize, col as usize, bit as usize);
        prop_assume!(cell_latents(seed, d.profile(), cell).temp_sens > 0.0);
        let p_at = |t: f64| {
            let mut d = device(seed);
            d.set_temperature(Celsius(t));
            d.failure_probability(cell, 10.0)
        };
        let p_lo = p_at(t_lo);
        let p_hi = p_at(t_lo + dt);
        prop_assert!(
            p_hi >= p_lo,
            "hotter must fail at least as often: p({}) = {} vs p({}) = {}",
            t_lo, p_lo, t_lo + dt, p_hi
        );
    }

    /// Every margin-affecting schedule step (temperature shift, noise
    /// bias change) fires the resolve-epoch invalidation exactly once;
    /// holds fire none.
    #[test]
    fn margin_affecting_schedule_steps_each_flush_resolutions(
        steps in proptest::collection::vec((0u8..4, 1u8..25), 1..40),
        seed in 0u64..16,
    ) {
        let mut d = device(seed);
        let mut schedule = EnvSchedule::new(seed);
        let mut bias_step = 0u32;
        for &(kind, mag) in &steps {
            schedule = match kind {
                0 => schedule.hold(1),
                // Unique bias per burst event guarantees each one is an
                // actual change (and hence must flush).
                1 => {
                    bias_step += 1;
                    schedule.push(dram_sim::EnvEvent::NoiseBias(-0.001 * bias_step as f64))
                }
                2 => schedule.shock(mag as f64),
                _ => schedule.shock(-(mag as f64)),
            };
        }
        let mut expected = d.sense_cache_stats().flushes;
        let mut i = 0usize;
        while let Some(event) = schedule.step(&mut d).expect("schedule applies") {
            match event {
                dram_sim::EnvEvent::Hold => {}
                _ => expected += 1,
            }
            let got = d.sense_cache_stats().flushes;
            prop_assert_eq!(
                got, expected,
                "step {} ({:?}) must flush exactly the margin changes", i, event
            );
            i += 1;
        }
    }

    /// Seed-for-seed equivalence under fault schedules: with the same
    /// chaos schedule applied to both, the memoizing fast path and the
    /// uncached oracle must emit identical words and end with identical
    /// stored data and ground-truth probabilities.
    #[test]
    fn fast_path_matches_oracle_under_fault_schedules(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        seed in 0u64..16,
    ) {
        let (mut fast, mut slow) = device_pair(seed);
        let mut sched_fast = chaos_schedule(seed);
        let mut sched_slow = chaos_schedule(seed);
        for (i, &op) in ops.iter().enumerate() {
            let a = apply(&mut fast, &mut sched_fast, op);
            let b = apply(&mut slow, &mut sched_slow, op);
            prop_assert_eq!(a, b, "divergence at step {} ({:?})", i, op);
        }
        prop_assert_eq!(fast.fault_stats(), slow.fault_stats());
        let g = small_geometry();
        for row in 0..g.rows {
            for col in 0..g.cols {
                let addr = WordAddr::new(0, row, col);
                prop_assert_eq!(fast.peek(addr), slow.peek(addr));
            }
        }
        for bit in (0..64).step_by(7) {
            let cell = CellAddr::new(0, 5, 2, bit);
            let pf = fast.failure_probability(cell, 10.0);
            let ps = slow.failure_probability(cell, 10.0);
            prop_assert_eq!(pf.to_bits(), ps.to_bits(), "ground truth moved");
        }
    }

    /// Aging only bites at schedule steps: between steps the wear (and
    /// hence every memoized probability) is frozen no matter how many
    /// activations land, and a step after heavy activation strictly
    /// increases an aged cell's failure probability once wear exceeds
    /// the dead zone.
    #[test]
    fn aging_wear_moves_only_at_schedule_steps(
        seed in 0u64..16,
        row in 0u8..32,
        acts in 200u32..2000,
    ) {
        let mut d = device(seed);
        let cell = CellAddr::new(0, row as usize, 1, 9);
        let mut schedule = EnvSchedule::new(seed).age_cells(&[cell], 0.04).hold(1);
        schedule.step(&mut d).expect("registration applies");
        let wear0 = d.cell_wear_v(cell);
        let p0 = d.failure_probability(cell, 10.0);
        for _ in 0..acts {
            d.activate(0, cell.row).expect("bank closed");
            d.precharge(0).expect("bank open");
        }
        prop_assert_eq!(d.cell_wear_v(cell).to_bits(), wear0.to_bits(),
            "wear frozen between steps");
        prop_assert_eq!(d.failure_probability(cell, 10.0).to_bits(), p0.to_bits(),
            "probability frozen between steps");
        schedule.step(&mut d).expect("hold applies");
        let expected = 0.04 * (acts as f64 / 1000.0);
        prop_assert!((d.cell_wear_v(cell) - expected).abs() < 1e-12,
            "wear tracks activation count at the step");
        prop_assert!(d.failure_probability(cell, 10.0) >= p0,
            "lost margin can only raise failure probability");
    }
}
