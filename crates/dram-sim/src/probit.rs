//! Fast bounded-error complementary-error-function / probit kernel for
//! the sensing fast path.
//!
//! [`crate::math::erfc`] is built for *accuracy anywhere* (Taylor series
//! plus a Lentz continued fraction) and costs hundreds of flops per
//! call; the sense hot path needs one Φ evaluation per stochastic cell
//! per resolve. This module supplies W. J. Cody's rational-minimax
//! `erfc` (the classic CALERF/W. Fullerton coefficient set, relative
//! error below 1.2·10⁻¹⁶ over the whole range), which costs a fixed
//! ~20 flops.
//!
//! Contract, enforced by the unit tests against `math::erfc`:
//!
//! * relative error < 1e-12 wherever `erfc(x) > 1e-300` (far tighter
//!   than the 1e-9 the cache design budgets for);
//! * the *saturation structure* matches the exact path: negative
//!   arguments are computed as `2 - fast_erfc(-x)`, exactly like
//!   `math::erfc`, so `p == 1.0` (the no-draw branch of a Bernoulli
//!   sampler) happens at the same argument magnitudes up to sub-ulp
//!   coefficient differences, and the deep positive tail underflows to
//!   `0.0` through the same `exp(-x²)` factor.

/// 1/√π, to full f64 precision (CALERF's `SQRPI`).
const SQRPI: f64 = 5.641_895_835_477_562_869_5e-1;

/// Switch point between the erf series region and the mid rational.
const THRESH: f64 = 0.46875;

/// Cody coefficients for erf on |x| ≤ 0.46875 (`A`/`B` arrays).
const A: [f64; 5] = [
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_56e2,
    3.774_852_376_853_020_2e2,
    3.209_377_589_138_469_47e3,
    1.857_777_061_846_031_53e-1,
];
const B: [f64; 4] = [
    2.360_129_095_234_412_09e1,
    2.440_246_379_344_441_73e2,
    1.282_616_526_077_372_28e3,
    2.844_236_833_439_170_62e3,
];

/// Cody coefficients for erfc on 0.46875 ≤ x ≤ 4 (`C`/`D` arrays).
const C: [f64; 9] = [
    5.641_884_969_886_700_89e-1,
    8.883_149_794_388_375_94e0,
    6.611_919_063_714_162_95e1,
    2.986_351_381_974_001_31e2,
    8.819_522_212_417_690_9e2,
    1.712_047_612_634_070_58e3,
    2.051_078_377_826_071_47e3,
    1.230_339_354_797_997_25e3,
    2.153_115_354_744_038_46e-8,
];
const D: [f64; 8] = [
    1.574_492_611_070_983_47e1,
    1.176_939_508_913_124_99e2,
    5.371_811_018_620_098_58e2,
    1.621_389_574_566_690_19e3,
    3.290_799_235_733_459_63e3,
    4.362_619_090_143_247_16e3,
    3.439_367_674_143_721_64e3,
    1.230_339_354_803_749_42e3,
];

/// Cody coefficients for the erfc asymptotic region x > 4 (`P`/`Q`).
const P: [f64; 6] = [
    3.053_266_349_612_323_44e-1,
    3.603_448_999_498_044_39e-1,
    1.257_817_261_112_292_46e-1,
    1.608_378_514_874_227_66e-2,
    6.587_491_615_298_378_03e-4,
    1.631_538_713_730_209_78e-2,
];
const Q: [f64; 5] = [
    2.568_520_192_289_822_42e0,
    1.872_952_849_923_460_47e0,
    5.279_051_029_514_284_12e-1,
    6.051_834_131_244_131_91e-2,
    2.335_204_976_268_691_85e-3,
];

/// erf(x) for |x| ≤ [`THRESH`] (Cody region 1).
fn erf_small(x: f64) -> f64 {
    let z = x * x;
    let mut xnum = A[4] * z;
    let mut xden = z;
    for i in 0..3 {
        xnum = (xnum + A[i]) * z;
        xden = (xden + B[i]) * z;
    }
    x * (xnum + A[3]) / (xden + B[3])
}

/// erfc(y) for [`THRESH`] ≤ y ≤ 4 (Cody region 2).
fn erfc_mid(y: f64) -> f64 {
    let mut xnum = C[8] * y;
    let mut xden = y;
    for i in 0..7 {
        xnum = (xnum + C[i]) * y;
        xden = (xden + D[i]) * y;
    }
    ((xnum + C[7]) / (xden + D[7])) * (-y * y).exp()
}

/// erfc(y) for y > 4 (Cody region 3, asymptotic in 1/y²).
fn erfc_tail(y: f64) -> f64 {
    let z = 1.0 / (y * y);
    let mut xnum = P[5] * z;
    let mut xden = z;
    for i in 0..4 {
        xnum = (xnum + P[i]) * z;
        xden = (xden + Q[i]) * z;
    }
    let r = z * (xnum + P[4]) / (xden + Q[4]);
    ((SQRPI - r) / y) * (-y * y).exp()
}

/// erfc(y) for y ≥ 0: the region dispatch both the scalar and the
/// lane kernels share, so every lane evaluates the exact expression
/// tree the scalar path would.
#[inline]
fn erfc_nonneg(y: f64) -> f64 {
    if y <= THRESH {
        1.0 - erf_small(y)
    } else if y <= 4.0 {
        erfc_mid(y)
    } else {
        erfc_tail(y)
    }
}

/// The complementary error function, rational-minimax approximation.
///
/// Drop-in accelerated companion of [`crate::math::erfc`]; see the
/// module docs for the accuracy and saturation contract.
pub fn fast_erfc(x: f64) -> f64 {
    if x < 0.0 {
        // Mirror math::erfc's reflection so both implementations
        // saturate to exactly 2.0 at the same argument magnitudes.
        return 2.0 - erfc_nonneg(-x);
    }
    erfc_nonneg(x)
}

/// Standard normal CDF via [`fast_erfc`] — the fast companion of
/// [`crate::math::phi`], sharing its `0.5 * erfc(-x/√2)` structure.
pub fn fast_phi(x: f64) -> f64 {
    0.5 * fast_erfc(-x / std::f64::consts::SQRT_2)
}

// ----------------------------------------------------------------------
// Explicit-width lane kernels.
//
// The bulk resolve path (SenseCache::resolve_words) evaluates Φ over a
// structure-of-arrays margin buffer four lanes at a time. Each lane
// performs *exactly* the floating-point operation sequence of the
// scalar functions above — same coefficients, same association order,
// same region dispatch — so the results are bit-identical to the
// scalar path by construction (no cross-lane arithmetic exists that
// could reassociate anything). When the four lanes fall into one Cody
// region the polynomial loops run over `[f64; LANES]` operands, which
// the compiler keeps in vector registers; mixed-region groups fall
// back to four scalar evaluations.
// ----------------------------------------------------------------------

/// Lane width of [`fast_erfc4`] / [`fast_phi4`].
pub const LANES: usize = 4;

/// Cody region of a non-negative argument: 0 = erf series,
/// 1 = mid rational, 2 = asymptotic tail.
#[inline]
fn region(y: f64) -> u8 {
    if y <= THRESH {
        0
    } else if y <= 4.0 {
        1
    } else {
        2
    }
}

/// Four-lane [`erf_small`].
#[inline]
fn erf_small4(y: [f64; LANES]) -> [f64; LANES] {
    let mut z = [0.0; LANES];
    for l in 0..LANES {
        z[l] = y[l] * y[l];
    }
    let mut xnum = [0.0; LANES];
    let mut xden = z;
    for l in 0..LANES {
        xnum[l] = A[4] * z[l];
    }
    for i in 0..3 {
        for l in 0..LANES {
            xnum[l] = (xnum[l] + A[i]) * z[l];
        }
        for l in 0..LANES {
            xden[l] = (xden[l] + B[i]) * z[l];
        }
    }
    let mut out = [0.0; LANES];
    for l in 0..LANES {
        out[l] = y[l] * (xnum[l] + A[3]) / (xden[l] + B[3]);
    }
    out
}

/// Four-lane [`erfc_mid`].
#[inline]
fn erfc_mid4(y: [f64; LANES]) -> [f64; LANES] {
    let mut xnum = [0.0; LANES];
    let mut xden = y;
    for l in 0..LANES {
        xnum[l] = C[8] * y[l];
    }
    for i in 0..7 {
        for l in 0..LANES {
            xnum[l] = (xnum[l] + C[i]) * y[l];
        }
        for l in 0..LANES {
            xden[l] = (xden[l] + D[i]) * y[l];
        }
    }
    let mut out = [0.0; LANES];
    for l in 0..LANES {
        out[l] = ((xnum[l] + C[7]) / (xden[l] + D[7])) * (-y[l] * y[l]).exp();
    }
    out
}

/// Four-lane [`erfc_tail`].
#[inline]
fn erfc_tail4(y: [f64; LANES]) -> [f64; LANES] {
    let mut z = [0.0; LANES];
    for l in 0..LANES {
        z[l] = 1.0 / (y[l] * y[l]);
    }
    let mut xnum = [0.0; LANES];
    let mut xden = z;
    for l in 0..LANES {
        xnum[l] = P[5] * z[l];
    }
    for i in 0..4 {
        for l in 0..LANES {
            xnum[l] = (xnum[l] + P[i]) * z[l];
        }
        for l in 0..LANES {
            xden[l] = (xden[l] + Q[i]) * z[l];
        }
    }
    let mut out = [0.0; LANES];
    for l in 0..LANES {
        let r = z[l] * (xnum[l] + P[4]) / (xden[l] + Q[4]);
        out[l] = ((SQRPI - r) / y[l]) * (-y[l] * y[l]).exp();
    }
    out
}

/// Four-lane [`fast_erfc`]: bit-identical to four scalar calls.
pub fn fast_erfc4(x: [f64; LANES]) -> [f64; LANES] {
    let mut y = [0.0; LANES];
    for l in 0..LANES {
        y[l] = x[l].abs();
    }
    let r0 = region(y[0]);
    let uniform = region(y[1]) == r0 && region(y[2]) == r0 && region(y[3]) == r0;
    let mut out = if uniform {
        match r0 {
            0 => {
                let e = erf_small4(y);
                let mut o = [0.0; LANES];
                for l in 0..LANES {
                    o[l] = 1.0 - e[l];
                }
                o
            }
            1 => erfc_mid4(y),
            _ => erfc_tail4(y),
        }
    } else {
        let mut o = [0.0; LANES];
        for l in 0..LANES {
            o[l] = erfc_nonneg(y[l]);
        }
        o
    };
    for l in 0..LANES {
        if x[l] < 0.0 {
            // Same reflection as the scalar path (NaN and -0.0 lanes
            // fall through unreflected there too, since `x < 0.0` is
            // false for both).
            out[l] = 2.0 - out[l];
        }
    }
    out
}

/// Four-lane [`fast_phi`]: bit-identical to four scalar calls.
pub fn fast_phi4(x: [f64; LANES]) -> [f64; LANES] {
    let mut a = [0.0; LANES];
    for l in 0..LANES {
        a[l] = -x[l] / std::f64::consts::SQRT_2;
    }
    let e = fast_erfc4(a);
    let mut out = [0.0; LANES];
    for l in 0..LANES {
        out[l] = 0.5 * e[l];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{erfc, phi};

    /// Dense sweep of the arguments the failure model can produce:
    /// margin·inv_sigma/√2 with margins in ±0.2 V and inv_sigma = 50
    /// lands |x| ≲ 8; probe far beyond to cover custom profiles.
    fn sweep() -> impl Iterator<Item = f64> {
        (-2600..=2600).map(|i| i as f64 * 0.01)
    }

    #[test]
    fn matches_reference_erfc_to_1e12_where_p_matters() {
        for x in sweep() {
            let exact = erfc(x);
            if exact < 1e-300 {
                continue;
            }
            let fast = fast_erfc(x);
            let rel = ((fast - exact) / exact).abs();
            assert!(
                rel < 1e-12,
                "erfc({x}): fast {fast:e} vs exact {exact:e}, rel {rel:e}"
            );
        }
    }

    #[test]
    fn phi_matches_reference() {
        for x in sweep() {
            let exact = phi(x);
            let fast = fast_phi(x);
            if exact > 1e-300 {
                let rel = ((fast - exact) / exact).abs();
                assert!(rel < 1e-12, "phi({x}): {fast:e} vs {exact:e}");
            } else {
                assert!(fast <= 1e-300, "phi({x}) deep tail: {fast:e}");
            }
        }
    }

    #[test]
    fn saturation_boundaries_agree_with_reference() {
        // A Bernoulli sampler draws no uniform when p <= 0 or p >= 1,
        // so the *saturation points* of the two implementations must
        // coincide or the fast path would desynchronize the noise
        // stream. Check p == 1.0 and p == 0.0 classification across
        // the sweep.
        for x in sweep() {
            assert_eq!(
                fast_phi(x) >= 1.0,
                phi(x) >= 1.0,
                "p==1 saturation split at {x}"
            );
            assert_eq!(
                fast_phi(x) <= 0.0,
                phi(x) <= 0.0,
                "p==0 saturation split at {x}"
            );
        }
    }

    #[test]
    fn known_values() {
        assert!((fast_erfc(0.0) - 1.0).abs() < 1e-15);
        assert!((fast_erfc(5.0) - 1.537_459_794_428_034_8e-12).abs() < 1e-24);
        let e10 = fast_erfc(10.0);
        assert!(((e10 - 2.088_487_583_762_544_7e-45) / 2.088_487_583_762_544_7e-45).abs() < 1e-12);
    }

    #[test]
    fn reflection_is_exact() {
        // The identity holds bitwise in the direction the code applies
        // it: a negative argument is answered as `2 − erfc(|x|)`. (The
        // converse direction is not bitwise: once `2 − tiny` rounds to
        // exactly 2.0, the tiny tail value cannot be recovered from it.)
        for x in sweep().filter(|x| *x >= 0.0) {
            let lhs = fast_erfc(-x);
            let rhs = 2.0 - fast_erfc(x);
            assert_eq!(lhs.to_bits(), rhs.to_bits(), "reflection at {x}");
        }
    }

    #[test]
    fn monotone_decreasing_on_grid() {
        let mut prev = f64::INFINITY;
        for x in sweep() {
            let v = fast_erfc(x);
            assert!(v <= prev, "erfc must not increase at {x}");
            prev = v;
        }
    }

    #[test]
    fn lane_erfc_is_bitwise_scalar_on_sweep() {
        // Consecutive sweep points land in the same region most of the
        // time (the vector path) but every region boundary produces a
        // mixed group (the scalar fallback) — both paths must be
        // bit-identical to four scalar calls.
        let xs: Vec<f64> = sweep().collect();
        for g in xs.chunks_exact(LANES) {
            let group = [g[0], g[1], g[2], g[3]];
            let got = fast_erfc4(group);
            for l in 0..LANES {
                assert_eq!(
                    got[l].to_bits(),
                    fast_erfc(group[l]).to_bits(),
                    "erfc lane {l} of {group:?}"
                );
            }
        }
    }

    #[test]
    fn lane_phi_is_bitwise_scalar_on_mixed_region_groups() {
        // Hand-picked groups spanning every region combination the
        // resolve path can gather: series/mid/tail, both signs, the
        // exact region switch points, zero, and saturated lanes.
        let groups = [
            [0.0, 0.1, -0.2, 0.3],
            [THRESH, -THRESH, 4.0, -4.0],
            [0.2, 2.0, 8.0, -0.2],
            [-9.0, 9.0, 0.46876, -0.46874],
            [26.0, -26.0, 3.9999, 0.00001],
            [5.0, 6.0, 7.0, 8.0],
            [1.0, 1.5, 2.5, 3.5],
        ];
        for group in groups {
            let phi4 = fast_phi4(group);
            let erfc4 = fast_erfc4(group);
            for l in 0..LANES {
                assert_eq!(
                    phi4[l].to_bits(),
                    fast_phi(group[l]).to_bits(),
                    "phi lane {l} of {group:?}"
                );
                assert_eq!(
                    erfc4[l].to_bits(),
                    fast_erfc(group[l]).to_bits(),
                    "erfc lane {l} of {group:?}"
                );
            }
        }
    }

    #[test]
    fn lane_phi_saturates_with_scalar() {
        // The Bernoulli no-draw classification (p <= 0, p >= 1) must
        // agree lane-for-lane, or a bulk-resolved word would consume a
        // different number of uniforms than a scalar-resolved one.
        let xs: Vec<f64> = sweep().collect();
        for g in xs.chunks_exact(LANES) {
            let group = [g[0], g[1], g[2], g[3]];
            let got = fast_phi4(group);
            for l in 0..LANES {
                let s = fast_phi(group[l]);
                assert_eq!(got[l] >= 1.0, s >= 1.0, "p==1 split at {}", group[l]);
                assert_eq!(got[l] <= 0.0, s <= 0.0, "p==0 split at {}", group[l]);
            }
        }
    }
}
