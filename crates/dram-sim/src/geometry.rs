//! Device geometry and cell addressing.
//!
//! A device is a set of banks; a bank is a grid of rows × columns of
//! 64-bit *DRAM words* (the access granularity of a READ burst, Section
//! 2.1.3 of the paper); each row belongs to a *subarray* of 512 or 1024
//! rows sharing local sense amplifiers (footnote 2 of the paper). A
//! *bitline* is one bit position across a row: bit `b` of column `c` sits
//! on bitline `c * word_bits + b`, which is the column-stripe axis of the
//! paper's Figure 4.

use serde::{Deserialize, Serialize};

use crate::error::{DramError, Result};

/// Shape of one simulated DRAM device (one rank's worth of banks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of banks in the device.
    pub banks: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Columns (64-bit DRAM words) per row.
    pub cols: usize,
    /// Bits per DRAM word. The paper's devices transfer 64-byte cache
    /// lines; we model the 64-bit word the failure analysis uses.
    pub word_bits: usize,
    /// Rows per subarray (512 for manufacturers A and B, 1024 for C).
    pub subarray_rows: usize,
}

impl Geometry {
    /// A compact geometry that keeps full-device characterization fast
    /// while preserving every structural property the paper measures:
    /// 8 banks × 1024 rows × 16 words (= 1024 bitlines, matching the
    /// 1024 × 1024 cell array of Figure 4).
    pub fn lpddr4_compact(subarray_rows: usize) -> Self {
        Geometry {
            banks: 8,
            rows: 1024,
            cols: 16,
            word_bits: 64,
            subarray_rows,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when any dimension is zero,
    /// `word_bits` exceeds 64, or `subarray_rows` does not divide `rows`.
    pub fn validate(&self) -> Result<()> {
        if self.banks == 0 || self.rows == 0 || self.cols == 0 || self.word_bits == 0 {
            return Err(DramError::InvalidConfig(
                "geometry dimensions must be nonzero".into(),
            ));
        }
        if self.word_bits > 64 {
            return Err(DramError::InvalidConfig(format!(
                "word_bits {} exceeds the u64 storage word",
                self.word_bits
            )));
        }
        if self.subarray_rows == 0 || self.rows % self.subarray_rows != 0 {
            return Err(DramError::InvalidConfig(format!(
                "subarray_rows {} must divide rows {}",
                self.subarray_rows, self.rows
            )));
        }
        Ok(())
    }

    /// Bitlines per row (`cols * word_bits`).
    #[inline]
    pub fn bitlines(&self) -> usize {
        self.cols * self.word_bits
    }

    /// Number of subarrays per bank.
    #[inline]
    pub fn subarrays(&self) -> usize {
        self.rows / self.subarray_rows
    }

    /// Subarray index of a row.
    #[inline]
    pub fn subarray_of(&self, row: usize) -> usize {
        row / self.subarray_rows
    }

    /// Row index within its subarray (distance from the local sense
    /// amplifiers, in the paper's row-gradient sense).
    #[inline]
    pub fn row_in_subarray(&self, row: usize) -> usize {
        row % self.subarray_rows
    }

    /// Total cells per bank.
    #[inline]
    pub fn cells_per_bank(&self) -> usize {
        self.rows * self.cols * self.word_bits
    }

    /// Total DRAM words per bank.
    #[inline]
    pub fn words_per_bank(&self) -> usize {
        self.rows * self.cols
    }

    /// The bitline index of `(col, bit)`.
    #[inline]
    pub fn bitline_of(&self, col: usize, bit: usize) -> usize {
        col * self.word_bits + bit
    }

    /// Iterator over every word address in one bank, column-major
    /// (the access order of the paper's Algorithm 1, Lines 4-5).
    pub fn words_col_major(&self, bank: usize) -> impl Iterator<Item = WordAddr> + '_ {
        let rows = self.rows;
        (0..self.cols).flat_map(move |col| (0..rows).map(move |row| WordAddr { bank, row, col }))
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::lpddr4_compact(512)
    }
}

/// Address of one DRAM word (the READ/WRITE granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WordAddr {
    /// Bank index.
    pub bank: usize,
    /// Row index within the bank.
    pub row: usize,
    /// Column (word) index within the row.
    pub col: usize,
}

impl WordAddr {
    /// Constructs a word address.
    pub fn new(bank: usize, row: usize, col: usize) -> Self {
        WordAddr { bank, row, col }
    }

    /// The address of bit `bit` within this word.
    pub fn cell(&self, bit: usize) -> CellAddr {
        CellAddr {
            bank: self.bank,
            row: self.row,
            col: self.col,
            bit,
        }
    }
}

/// Address of a single DRAM cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellAddr {
    /// Bank index.
    pub bank: usize,
    /// Row index within the bank.
    pub row: usize,
    /// Column (word) index within the row.
    pub col: usize,
    /// Bit index within the word.
    pub bit: usize,
}

impl CellAddr {
    /// Constructs a cell address.
    pub fn new(bank: usize, row: usize, col: usize, bit: usize) -> Self {
        CellAddr {
            bank,
            row,
            col,
            bit,
        }
    }

    /// The word containing this cell.
    pub fn word(&self) -> WordAddr {
        WordAddr {
            bank: self.bank,
            row: self.row,
            col: self.col,
        }
    }
}

impl From<CellAddr> for WordAddr {
    fn from(c: CellAddr) -> Self {
        c.word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_figure4_scale() {
        let g = Geometry::default();
        g.validate().unwrap();
        assert_eq!(g.bitlines(), 1024);
        assert_eq!(g.rows, 1024);
        assert_eq!(g.subarrays(), 2);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut g = Geometry::default();
        g.word_bits = 65;
        assert!(g.validate().is_err());
        let mut g = Geometry::default();
        g.subarray_rows = 300; // does not divide 1024
        assert!(g.validate().is_err());
        let mut g = Geometry::default();
        g.banks = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn subarray_indexing() {
        let g = Geometry::lpddr4_compact(512);
        assert_eq!(g.subarray_of(0), 0);
        assert_eq!(g.subarray_of(511), 0);
        assert_eq!(g.subarray_of(512), 1);
        assert_eq!(g.row_in_subarray(600), 88);
    }

    #[test]
    fn bitline_mapping_is_injective() {
        let g = Geometry::default();
        let mut seen = std::collections::HashSet::new();
        for col in 0..g.cols {
            for bit in 0..g.word_bits {
                assert!(seen.insert(g.bitline_of(col, bit)));
            }
        }
        assert_eq!(seen.len(), g.bitlines());
    }

    #[test]
    fn col_major_iteration_order() {
        let g = Geometry {
            banks: 1,
            rows: 3,
            cols: 2,
            word_bits: 8,
            subarray_rows: 3,
        };
        let order: Vec<_> = g.words_col_major(0).collect();
        // Column-order: all rows of col 0, then all rows of col 1.
        assert_eq!(order[0], WordAddr::new(0, 0, 0));
        assert_eq!(order[1], WordAddr::new(0, 1, 0));
        assert_eq!(order[2], WordAddr::new(0, 2, 0));
        assert_eq!(order[3], WordAddr::new(0, 0, 1));
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn cell_word_round_trip() {
        let c = CellAddr::new(2, 10, 3, 17);
        let w = c.word();
        assert_eq!(w.cell(17), c);
        assert_eq!(WordAddr::from(c), w);
    }
}
