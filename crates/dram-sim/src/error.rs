//! Error type shared by all fallible device operations.

use std::fmt;

/// Convenience alias for `Result<T, DramError>`.
pub type Result<T> = std::result::Result<T, DramError>;

/// Errors raised by the DRAM device model.
///
/// These model *protocol* violations — command sequences the real device
/// would reject or respond to with undefined behavior — not simulation
/// bugs. Timing violations that the paper exploits (reduced `tRCD`) are
/// **not** errors; they are legal inputs to [`crate::DramDevice::read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A bank index was outside the device geometry.
    BankOutOfRange {
        /// The offending bank index.
        bank: usize,
        /// Number of banks in the device.
        banks: usize,
    },
    /// A row index was outside the device geometry.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Rows per bank in the device.
        rows: usize,
    },
    /// A column index was outside the device geometry.
    ColOutOfRange {
        /// The offending column index.
        col: usize,
        /// Columns per row in the device.
        cols: usize,
    },
    /// ACT was issued to a bank that already has an open row.
    BankAlreadyOpen {
        /// The bank that was already open.
        bank: usize,
        /// The row currently open in that bank.
        open_row: usize,
    },
    /// READ/WRITE was issued to a bank with no open row, or PRE semantics
    /// were violated.
    BankNotOpen {
        /// The bank with no open row.
        bank: usize,
    },
    /// READ/WRITE was issued for a row other than the open one.
    WrongOpenRow {
        /// The bank in question.
        bank: usize,
        /// The row the caller addressed.
        requested: usize,
        /// The row actually open.
        open_row: usize,
    },
    /// A configuration value was invalid (e.g. zero-sized geometry).
    InvalidConfig(String),
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (device has {banks} banks)")
            }
            DramError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (bank has {rows} rows)")
            }
            DramError::ColOutOfRange { col, cols } => {
                write!(f, "column {col} out of range (row has {cols} columns)")
            }
            DramError::BankAlreadyOpen { bank, open_row } => {
                write!(
                    f,
                    "activate to bank {bank} which already has row {open_row} open"
                )
            }
            DramError::BankNotOpen { bank } => {
                write!(f, "access to bank {bank} with no open row")
            }
            DramError::WrongOpenRow {
                bank,
                requested,
                open_row,
            } => write!(
                f,
                "access to row {requested} in bank {bank} but row {open_row} is open"
            ),
            DramError::InvalidConfig(msg) => write!(f, "invalid device configuration: {msg}"),
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = DramError::BankOutOfRange { bank: 9, banks: 8 };
        let text = err.to_string();
        assert!(text.contains('9') && text.contains('8'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }

    #[test]
    fn wrong_open_row_mentions_both_rows() {
        let err = DramError::WrongOpenRow {
            bank: 1,
            requested: 5,
            open_row: 3,
        };
        let text = err.to_string();
        assert!(text.contains('5') && text.contains('3'));
    }
}
