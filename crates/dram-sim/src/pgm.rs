//! Plain PGM (portable graymap) writer for failure bitmaps — lets the
//! Figure 4 bench emit an actual image of the spatial failure
//! distribution, viewable with any image tool.

use std::io::{self, Write};

/// Encodes a binary bitmap (`true` = black mark, as in the paper's
/// Figure 4) as an ASCII PGM (P2) image.
///
/// # Panics
///
/// Panics if `bitmap` is empty or ragged.
pub fn encode_pgm(bitmap: &[Vec<bool>]) -> Vec<u8> {
    assert!(!bitmap.is_empty(), "bitmap must have at least one row");
    let width = bitmap[0].len();
    assert!(width > 0, "bitmap rows must be nonempty");
    assert!(
        bitmap.iter().all(|r| r.len() == width),
        "bitmap rows must all have the same width"
    );
    let mut out = Vec::with_capacity(bitmap.len() * (width * 2 + 1) + 32);
    out.extend_from_slice(format!("P2\n{} {}\n255\n", width, bitmap.len()).as_bytes());
    for row in bitmap {
        let mut line = String::with_capacity(width * 4);
        for (i, &marked) in row.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(if marked { "0" } else { "255" });
        }
        line.push('\n');
        out.extend_from_slice(line.as_bytes());
    }
    out
}

/// Writes a bitmap as PGM to any writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_pgm<W: Write>(mut writer: W, bitmap: &[Vec<bool>]) -> io::Result<()> {
    writer.write_all(&encode_pgm(bitmap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_header_and_pixels() {
        let bitmap = vec![vec![true, false], vec![false, true]];
        let pgm = String::from_utf8(encode_pgm(&bitmap)).unwrap();
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("2 2"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(lines.next(), Some("0 255"));
        assert_eq!(lines.next(), Some("255 0"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn write_into_vec() {
        let bitmap = vec![vec![false; 3]; 2];
        let mut buf = Vec::new();
        write_pgm(&mut buf, &bitmap).unwrap();
        assert!(buf.starts_with(b"P2\n3 2\n255\n"));
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn ragged_bitmap_panics() {
        let _ = encode_pgm(&[vec![true], vec![true, false]]);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_bitmap_panics() {
        let _ = encode_pgm(&[]);
    }
}
