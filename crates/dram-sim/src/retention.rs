//! Data-retention failure model.
//!
//! Used by the retention-based baseline TRNGs the paper compares against
//! (Keller+ ISCAS'14, Sutar+ TECS'18 — Section 8.2). A DRAM cell left
//! unrefreshed for longer than its retention time leaks enough charge to
//! flip toward its discharged state. Retention times are lognormal with
//! a very long median (most cells retain for minutes at 45 °C) and halve
//! every ~10 °C — which is why retention TRNGs must wait tens of seconds
//! to harvest entropy, the core of the paper's throughput argument.

use crate::device::DramDevice;
use crate::geometry::{CellAddr, WordAddr};

/// Salt for the per-cell retention-time latent.
const RETENTION_SALT: u64 = 0x52;

/// Relative jitter of the effective retention threshold per trial — the
/// noise that makes cells near the threshold truly random.
const RETENTION_JITTER: f64 = 0.06;

/// The deterministic component of a cell's retention time at the current
/// device temperature, in seconds.
pub fn retention_time_s(device: &DramDevice, cell: CellAddr) -> f64 {
    let p = device.profile();
    let g = crate::variation::cell_gauss(device.seed(), RETENTION_SALT, cell);
    let t45 = (p.retention_ln_mean_s + p.retention_ln_sd * g).exp();
    let dt = device.temperature().degrees() - 45.0;
    t45 * (2f64).powf(-dt / p.retention_halving_c)
}

/// Report of one refresh-pause experiment.
#[derive(Debug, Clone, Default)]
pub struct RetentionReport {
    /// Cells that flipped during the pause.
    pub failed: Vec<CellAddr>,
    /// Number of cells examined.
    pub examined: usize,
}

impl RetentionReport {
    /// Failure rate over the examined region.
    pub fn failure_rate(&self) -> f64 {
        if self.examined == 0 {
            0.0
        } else {
            self.failed.len() as f64 / self.examined as f64
        }
    }
}

/// Simulates disabling refresh for `pause_s` seconds over the rows
/// `rows` of bank `bank`, mutating stored data: every cell whose
/// (jittered) retention time is shorter than the pause decays to its
/// discharged value.
///
/// Returns the set of cells that flipped. Cells whose retention time is
/// close to the pause flip nondeterministically (threshold jitter drawn
/// from the device noise source) — the entropy the retention baselines
/// harvest.
pub fn apply_refresh_pause(
    device: &mut DramDevice,
    bank: usize,
    rows: std::ops::Range<usize>,
    pause_s: f64,
) -> RetentionReport {
    let g = device.geometry();
    let mut report = RetentionReport::default();
    for row in rows {
        let anti = row % 2 == 1;
        for col in 0..g.cols {
            let addr = WordAddr::new(bank, row, col);
            // xtask:allow(no-panic) -- col iterates the device's own geometry, always in range
            let mut word = device.peek(addr).expect("region in range");
            let mut changed = false;
            for bit in 0..g.word_bits {
                report.examined += 1;
                let cell = addr.cell(bit);
                let stored = (word >> bit) & 1 == 1;
                let charge_high = stored ^ anti;
                if !charge_high {
                    // Already at the discharged level; nothing to lose.
                    continue;
                }
                let t_ret = retention_time_s(device, cell);
                // Jitter the threshold: cells near the boundary flip
                // randomly from trial to trial.
                let jitter = 1.0 + RETENTION_JITTER * (device.noise_uniform() * 2.0 - 1.0);
                if t_ret * jitter < pause_s {
                    // Decay to discharged: physical 0, logical depends on
                    // cell orientation.
                    let decayed_logical = anti; // physical low ^ anti
                    if decayed_logical != stored {
                        word ^= 1u64 << bit;
                        changed = true;
                        report.failed.push(cell);
                    }
                }
            }
            if changed {
                // xtask:allow(no-panic) -- same address peek succeeded on above
                device.poke(addr, word).expect("region in range");
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_pattern::DataPattern;
    use crate::device::DeviceConfig;
    use crate::manufacturer::Manufacturer;
    use crate::temperature::Celsius;

    fn device() -> DramDevice {
        DramDevice::build(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(5)
                .with_noise_seed(6),
        )
    }

    #[test]
    fn retention_times_are_lognormal_scale() {
        let d = device();
        let mut times: Vec<f64> = (0..2000)
            .map(|i| retention_time_s(&d, CellAddr::new(0, i % 1024, (i / 1024) % 16, i % 64)))
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        // ln-median 4.38 => ~80 s.
        assert!(median > 20.0 && median < 320.0, "median retention {median}");
        assert!(times[0] < median / 10.0, "a weak tail exists");
    }

    #[test]
    fn hotter_means_shorter_retention() {
        let mut d = device();
        let c = CellAddr::new(0, 3, 2, 1);
        let cold = retention_time_s(&d, c);
        d.set_temperature(Celsius(65.0));
        let hot = retention_time_s(&d, c);
        assert!((cold / hot - 4.0).abs() < 1e-6, "20C hotter = 4x shorter");
    }

    #[test]
    fn longer_pause_flips_more_cells() {
        let mut d1 = device();
        d1.fill_bank(0, DataPattern::Solid1);
        let short = apply_refresh_pause(&mut d1, 0, 0..256, 1.0);
        let mut d2 = device();
        d2.fill_bank(0, DataPattern::Solid1);
        let long = apply_refresh_pause(&mut d2, 0, 0..256, 40.0);
        assert!(long.failed.len() > short.failed.len());
        assert!(long.failure_rate() > 0.0);
    }

    #[test]
    fn discharged_cells_do_not_flip() {
        // A pattern that stores the discharged level everywhere: logical
        // value equal to `anti` per row. After any pause, nothing flips.
        let mut d = device();
        let g = d.geometry();
        for row in 0..64 {
            let word = if row % 2 == 1 { u64::MAX } else { 0 };
            for col in 0..g.cols {
                d.poke(WordAddr::new(0, row, col), word).unwrap();
            }
        }
        let rep = apply_refresh_pause(&mut d, 0, 0..64, 1e9);
        assert!(rep.failed.is_empty());
    }

    #[test]
    fn failures_decay_toward_discharged_value() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Solid1);
        let rep = apply_refresh_pause(&mut d, 0, 0..1024, 300.0);
        assert!(!rep.failed.is_empty());
        for cell in &rep.failed {
            let stored = d.stored_bit(*cell);
            let anti = cell.row % 2 == 1;
            assert_eq!(stored, anti, "decayed logical value is the discharged one");
        }
    }

    #[test]
    fn report_rate_handles_empty() {
        assert_eq!(RetentionReport::default().failure_rate(), 0.0);
    }
}
