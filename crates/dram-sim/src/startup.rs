//! DRAM startup-value model.
//!
//! Used by the startup-value baseline TRNGs the paper compares against
//! (Tehranipoor+ HOST'16, Eckert+ MWSCAS'17 — Section 8.3). When a DRAM
//! device powers on, each cell settles to a value determined by circuit
//! asymmetries: most cells are strongly biased (stable 0 or stable 1),
//! while a small fraction settles randomly on each power cycle. Only a
//! full power cycle refreshes this entropy — the reason startup-value
//! TRNGs cannot stream.

use crate::device::DramDevice;
use crate::geometry::{CellAddr, WordAddr};
use crate::variation::{cell_gauss, cell_uniform};

/// Salt for the per-cell startup class latent.
const STARTUP_CLASS_SALT: u64 = 0x53;
/// Salt for the stable startup value latent.
const STARTUP_VALUE_SALT: u64 = 0x54;
/// Salt for the per-cell random-bias latent.
const STARTUP_BIAS_SALT: u64 = 0x55;

/// How a cell behaves at power-on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StartupClass {
    /// Settles to the same value on every power cycle.
    Stable(bool),
    /// Settles randomly with the given probability of reading 1.
    Random {
        /// Probability that the cell powers up as 1.
        p_one: f64,
    },
}

/// The startup class of a cell (fixed at manufacturing time).
pub fn startup_class(device: &DramDevice, cell: CellAddr) -> StartupClass {
    let p = device.profile();
    let seed = device.seed();
    if cell_uniform(seed, STARTUP_CLASS_SALT, cell) < p.startup_random_frac {
        // Random cells are biased around 0.5 with a modest spread.
        let bias = 0.5 + 0.15 * cell_gauss(seed, STARTUP_BIAS_SALT, cell);
        StartupClass::Random {
            p_one: bias.clamp(0.02, 0.98),
        }
    } else {
        StartupClass::Stable(cell_uniform(seed, STARTUP_VALUE_SALT, cell) < 0.5)
    }
}

/// Simulates a device power cycle: every cell of every bank takes its
/// startup value (stable cells their fixed value, random cells a fresh
/// noise draw). All previously stored data is lost.
///
/// Returns the number of random-class cells (the entropy inventory the
/// startup baselines mine).
pub fn power_cycle(device: &mut DramDevice) -> usize {
    let g = device.geometry();
    let mut random_cells = 0usize;
    for bank in 0..g.banks {
        for row in 0..g.rows {
            for col in 0..g.cols {
                let addr = WordAddr::new(bank, row, col);
                let mut word = 0u64;
                for bit in 0..g.word_bits {
                    let value = match startup_class(device, addr.cell(bit)) {
                        StartupClass::Stable(v) => v,
                        StartupClass::Random { p_one } => {
                            random_cells += 1;
                            device.noise_bernoulli(p_one)
                        }
                    };
                    if value {
                        word |= 1u64 << bit;
                    }
                }
                // xtask:allow(no-panic) -- address iterates the device's own geometry, always in range
                device.poke(addr, word).expect("in range");
            }
        }
    }
    random_cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::geometry::Geometry;
    use crate::manufacturer::Manufacturer;

    fn small_device() -> DramDevice {
        DramDevice::build(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(9)
                .with_noise_seed(10)
                .with_geometry(Geometry {
                    banks: 2,
                    rows: 64,
                    cols: 8,
                    word_bits: 64,
                    subarray_rows: 64,
                }),
        )
    }

    #[test]
    fn class_is_deterministic() {
        let d = small_device();
        let c = CellAddr::new(0, 1, 2, 3);
        assert_eq!(startup_class(&d, c), startup_class(&d, c));
    }

    #[test]
    fn random_fraction_is_near_profile() {
        let d = small_device();
        let g = d.geometry();
        let mut random = 0usize;
        let mut total = 0usize;
        for row in 0..g.rows {
            for col in 0..g.cols {
                for bit in 0..g.word_bits {
                    total += 1;
                    if matches!(
                        startup_class(&d, CellAddr::new(0, row, col, bit)),
                        StartupClass::Random { .. }
                    ) {
                        random += 1;
                    }
                }
            }
        }
        let frac = random as f64 / total as f64;
        let want = d.profile().startup_random_frac;
        assert!(
            (frac - want).abs() < 0.02,
            "random fraction {frac} want {want}"
        );
    }

    #[test]
    fn stable_cells_repeat_across_power_cycles() {
        let mut d = small_device();
        power_cycle(&mut d);
        let snap1: Vec<u64> = (0..8)
            .map(|c| d.peek(WordAddr::new(0, 0, c)).unwrap())
            .collect();
        power_cycle(&mut d);
        let snap2: Vec<u64> = (0..8)
            .map(|c| d.peek(WordAddr::new(0, 0, c)).unwrap())
            .collect();
        // Stable cells agree; only random-class cells may differ.
        for col in 0..8 {
            let diff = snap1[col] ^ snap2[col];
            for bit in 0..64 {
                if (diff >> bit) & 1 == 1 {
                    assert!(matches!(
                        startup_class(&d, CellAddr::new(0, 0, col, bit)),
                        StartupClass::Random { .. }
                    ));
                }
            }
        }
    }

    #[test]
    fn random_cells_actually_vary() {
        let mut d = small_device();
        let n1 = power_cycle(&mut d);
        let snap1: Vec<Vec<u64>> = (0..d.geometry().rows)
            .map(|r| {
                (0..8)
                    .map(|c| d.peek(WordAddr::new(0, r, c)).unwrap())
                    .collect()
            })
            .collect();
        let n2 = power_cycle(&mut d);
        assert_eq!(n1, n2, "inventory of random cells is fixed");
        let mut changed = 0usize;
        for r in 0..d.geometry().rows {
            for c in 0..8 {
                changed +=
                    (snap1[r][c] ^ d.peek(WordAddr::new(0, r, c)).unwrap()).count_ones() as usize;
            }
        }
        assert!(changed > 0, "some random-class cells flip between cycles");
    }

    #[test]
    fn power_cycle_reports_inventory_for_all_banks() {
        let mut d = small_device();
        let n = power_cycle(&mut d);
        let cells = d.geometry().banks * d.geometry().cells_per_bank();
        let frac = n as f64 / cells as f64;
        assert!((frac - d.profile().startup_random_frac).abs() < 0.02);
    }
}
