//! Time-resolved bitline/cell waveforms — the paper's Figure 3: the
//! state of a DRAM cell through the precharged → charge-sharing →
//! sensing/restoration → restored → precharged sequence, and where a
//! reduced-tRCD READ samples that trajectory.
//!
//! The same settling curve that drives the failure physics
//! ([`crate::PhysicsProfile::settle`]) generates the waveform, so the
//! plotted trajectory and the failure model are one consistent story.

use crate::manufacturer::PhysicsProfile;

/// Phase of the cell/bitline during a read cycle (Figure 3's ①-⑤).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// ① Precharged: bitline at Vdd/2, wordline off.
    Precharged,
    /// ② Charge sharing: capacitor perturbs the bitline by δ.
    ChargeSharing,
    /// ③ Sensing and restoration: the sense amp drives bitline and cell.
    Sensing,
    /// ④ Restored: full level reached; safe to precharge after tRAS.
    Restored,
    /// ⑤ Precharging back to Vdd/2 after PRE.
    Precharging,
}

/// One sample of the waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Time since ACT, ns.
    pub t_ns: f64,
    /// Normalized bitline voltage in [0, 1] (Vdd/2 = 0.5).
    pub v_bitline: f64,
    /// Phase label.
    pub phase: Phase,
}

/// Charge-sharing perturbation magnitude (δ of Figure 3), normalized.
pub const CHARGE_SHARING_DELTA: f64 = 0.07;

/// Computes the bitline trajectory for a cell storing a one, from ACT
/// through `pre_at_ns` (PRE issue) to `end_ns`.
///
/// * `0 .. t0`: charge sharing ramps the bitline from 0.5 to 0.5 + δ.
/// * `t0 .. pre_at`: the sense amp settles toward full level following
///   the profile's settling curve (scaled onto `[0.5 + δ, 1]`).
/// * `pre_at .. end`: precharge drives the bitline back to 0.5.
///
/// # Panics
///
/// Panics unless `0 < pre_at_ns < end_ns`.
pub fn read_cycle(
    profile: &PhysicsProfile,
    pre_at_ns: f64,
    end_ns: f64,
    step_ns: f64,
) -> Vec<Sample> {
    assert!(pre_at_ns > 0.0 && end_ns > pre_at_ns && step_ns > 0.0);
    let t0 = profile.settle_t0_ns;
    let mut out = Vec::new();
    let mut t = 0.0;
    let v_at = |t: f64| -> (f64, Phase) {
        if t <= 0.0 {
            (0.5, Phase::Precharged)
        } else if t < t0 {
            // Linear charge-sharing ramp to 0.5 + delta.
            (0.5 + CHARGE_SHARING_DELTA * (t / t0), Phase::ChargeSharing)
        } else if t < pre_at_ns {
            let g = profile.settle(t); // 0 at t0, -> 1
            let v = (0.5 + CHARGE_SHARING_DELTA) + (1.0 - (0.5 + CHARGE_SHARING_DELTA)) * g;
            let phase = if g > 0.98 {
                Phase::Restored
            } else {
                Phase::Sensing
            };
            (v, phase)
        } else {
            // Exponential precharge back to Vdd/2.
            let v_pre = {
                let g = profile.settle(pre_at_ns);
                (0.5 + CHARGE_SHARING_DELTA) + (1.0 - (0.5 + CHARGE_SHARING_DELTA)) * g
            };
            let tau = 2.0; // ns, precharge time constant
            let v = 0.5 + (v_pre - 0.5) * (-(t - pre_at_ns) / tau).exp();
            (v, Phase::Precharging)
        }
    };
    while t <= end_ns + 1e-9 {
        let (v_bitline, phase) = v_at(t);
        out.push(Sample {
            t_ns: t,
            v_bitline,
            phase,
        });
        t += step_ns;
    }
    out
}

/// The normalized bitline voltage at READ time for a given tRCD — the
/// quantity the failure model thresholds against `theta_v`.
pub fn voltage_at_read(profile: &PhysicsProfile, trcd_ns: f64) -> f64 {
    if trcd_ns <= 0.0 {
        return 0.5;
    }
    let t0 = profile.settle_t0_ns;
    if trcd_ns < t0 {
        0.5 + CHARGE_SHARING_DELTA * (trcd_ns / t0)
    } else {
        let g = profile.settle(trcd_ns);
        (0.5 + CHARGE_SHARING_DELTA) + (1.0 - (0.5 + CHARGE_SHARING_DELTA)) * g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manufacturer::Manufacturer;

    fn profile() -> PhysicsProfile {
        Manufacturer::A.profile()
    }

    #[test]
    fn waveform_visits_all_phases_in_order() {
        let p = profile();
        let wave = read_cycle(&p, 42.0, 60.0, 0.25);
        let phases: Vec<Phase> = wave.iter().map(|s| s.phase).collect();
        // First sample precharged, then charge sharing, sensing,
        // restored, precharging — in that order.
        let mut seen = Vec::new();
        for ph in phases {
            if seen.last() != Some(&ph) {
                seen.push(ph);
            }
        }
        assert_eq!(
            seen,
            vec![
                Phase::Precharged,
                Phase::ChargeSharing,
                Phase::Sensing,
                Phase::Restored,
                Phase::Precharging
            ]
        );
    }

    #[test]
    fn bitline_is_monotone_until_precharge() {
        let p = profile();
        let wave = read_cycle(&p, 42.0, 60.0, 0.1);
        let mut prev = 0.0;
        for s in wave.iter().filter(|s| s.t_ns <= 42.0) {
            assert!(
                s.v_bitline >= prev - 1e-12,
                "rising until PRE at t={}",
                s.t_ns
            );
            prev = s.v_bitline;
        }
        // And returns toward 0.5 afterwards.
        let last = wave.last().unwrap();
        assert!((last.v_bitline - 0.5).abs() < 0.05);
    }

    #[test]
    fn read_voltage_matches_failure_threshold_story() {
        let p = profile();
        // At the datasheet tRCD the bitline is far above the threshold;
        // at 10 ns it is near it; at 6 ns well below.
        let v18 = voltage_at_read(&p, 18.0);
        let v10 = voltage_at_read(&p, 10.0);
        let v6 = voltage_at_read(&p, 6.0);
        assert!(v18 > p.theta_v + 0.05, "v18 = {v18}");
        assert!(
            (v10 - p.theta_v).abs() < 0.15,
            "v10 = {v10} vs theta {}",
            p.theta_v
        );
        assert!(v6 < v10 && v10 < v18);
    }

    #[test]
    fn voltage_is_bounded_and_continuous() {
        let p = profile();
        let mut prev = voltage_at_read(&p, 0.0);
        for i in 1..200 {
            let t = i as f64 * 0.2;
            let v = voltage_at_read(&p, t);
            assert!((0.0..=1.0).contains(&v));
            assert!((v - prev).abs() < 0.05, "no jumps at t={t}");
            prev = v;
        }
    }

    #[test]
    #[should_panic]
    fn bad_times_panic() {
        let _ = read_cycle(&profile(), 10.0, 5.0, 0.1);
    }
}
