//! Command traces: the record of issued commands that the energy model
//! (and tests) consume, mirroring the Ramulator-trace → DRAMPower flow
//! the paper uses for its energy evaluation (Section 7.3).

use crate::commands::{Command, CommandKind};

/// An append-only record of issued DRAM commands.
#[derive(Debug, Clone, Default)]
pub struct CommandTrace {
    commands: Vec<Command>,
}

impl CommandTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        CommandTrace {
            commands: Vec::new(),
        }
    }

    /// Appends a command. Commands should be appended in nondecreasing
    /// time order; [`CommandTrace::is_time_ordered`] verifies.
    pub fn push(&mut self, cmd: Command) {
        self.commands.push(cmd);
    }

    /// The recorded commands in order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Number of commands of a given kind.
    pub fn count(&self, kind: CommandKind) -> usize {
        self.commands.iter().filter(|c| c.kind == kind).count()
    }

    /// The end time of the trace (issue time of the last command), ps.
    pub fn end_ps(&self) -> u64 {
        self.commands.last().map_or(0, |c| c.at_ps)
    }

    /// True when command times are nondecreasing.
    pub fn is_time_ordered(&self) -> bool {
        self.commands.windows(2).all(|w| w[0].at_ps <= w[1].at_ps)
    }

    /// Removes all recorded commands.
    pub fn clear(&mut self) {
        self.commands.clear();
    }
}

impl Extend<Command> for CommandTrace {
    fn extend<T: IntoIterator<Item = Command>>(&mut self, iter: T) {
        self.commands.extend(iter);
    }
}

impl FromIterator<Command> for CommandTrace {
    fn from_iter<T: IntoIterator<Item = Command>>(iter: T) -> Self {
        CommandTrace {
            commands: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a CommandTrace {
    type Item = &'a Command;
    type IntoIter = std::slice::Iter<'a, Command>;
    fn into_iter(self) -> Self::IntoIter {
        self.commands.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut t = CommandTrace::new();
        assert!(t.is_empty());
        t.push(Command::act(0, 1, 0));
        t.push(Command::rd(0, 1, 0, 10_000));
        t.push(Command::pre(0, 20_000));
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(CommandKind::Act), 1);
        assert_eq!(t.count(CommandKind::Rd), 1);
        assert_eq!(t.count(CommandKind::Wr), 0);
        assert_eq!(t.end_ps(), 20_000);
        assert!(t.is_time_ordered());
    }

    #[test]
    fn detects_out_of_order() {
        let t: CommandTrace = [Command::act(0, 1, 100), Command::pre(0, 50)]
            .into_iter()
            .collect();
        assert!(!t.is_time_ordered());
    }

    #[test]
    fn extend_and_clear() {
        let mut t = CommandTrace::new();
        t.extend([Command::act(0, 0, 0), Command::pre(0, 1)]);
        assert_eq!(t.len(), 2);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.end_ps(), 0);
    }

    #[test]
    fn iterates_by_reference() {
        let t: CommandTrace = [Command::act(0, 0, 0)].into_iter().collect();
        let kinds: Vec<_> = (&t).into_iter().map(|c| c.kind).collect();
        assert_eq!(kinds, [CommandKind::Act]);
    }
}
