//! Process-variation model: fixed-at-manufacturing-time latent
//! parameters for every sense amplifier, bitline, and cell.
//!
//! Bitline/sense-amp strengths are materialized (they are few), while
//! per-cell parameters are derived on demand from a counter-based hash of
//! the device seed and the cell coordinates (they are many). Both are
//! deterministic functions of the seed — the model's analogue of the
//! paper's observation that a cell's activation-failure probability is
//! fully determined at manufacturing time (Section 5.4).

use crate::geometry::{CellAddr, Geometry};
use crate::manufacturer::PhysicsProfile;
use crate::math::{cell_key, gauss_for_key, splitmix64, to_unit_f64, unit_for_key};

/// Salt values for the independent per-cell latent fields.
mod salt {
    pub const EPS: u64 = 0x01;
    pub const COUPL_L: u64 = 0x02;
    pub const COUPL_R: u64 = 0x03;
    pub const CHARGE: u64 = 0x04;
    pub const TEMP: u64 = 0x05;
    pub const STRENGTH: u64 = 0x06;
    pub const WEAK_PICK: u64 = 0x07;
    pub const WEAK_COUNT: u64 = 0x08;
    pub const CLUSTER: u64 = 0x09;
}

/// Materialized per-bitline sense-amp drive strengths with the weak
/// subset marked (the "weaker local sense amplifiers" of Section 5.1).
#[derive(Debug, Clone)]
pub struct VariationMap {
    geometry: Geometry,
    subarrays: usize,
    /// Drive strength per `(bank, subarray, bitline)`, row-major.
    strengths: Vec<f32>,
    /// Weak flag per `(bank, subarray, bitline)`.
    weak: Vec<bool>,
}

impl VariationMap {
    /// Builds the strength map for a device with the given seed.
    ///
    /// Subarray structure comes from `geometry.subarray_rows` (the device
    /// configuration is responsible for aligning it with the profile).
    pub fn build(seed: u64, geometry: Geometry, profile: &PhysicsProfile) -> Self {
        let subarrays = geometry.subarrays().max(1);
        let bitlines = geometry.bitlines();
        let n = geometry.banks * subarrays * bitlines;
        let mut strengths = vec![0f32; n];
        let mut weak = vec![false; n];

        for bank in 0..geometry.banks {
            for sub in 0..subarrays {
                let base = (bank * subarrays + sub) * bitlines;
                // Strong strengths for every bitline.
                for bl in 0..bitlines {
                    let k = cell_key(seed, salt::STRENGTH, bank as u64, sub as u64, bl as u64, 0);
                    strengths[base + bl] =
                        (profile.strong_mean + profile.strong_sd * gauss_for_key(k)) as f32;
                }
                // Poisson-distributed number of weak bitlines, scaled to
                // the geometry's bitline count.
                let lambda = profile.weak_per_1024_bitlines * bitlines as f64 / 1024.0;
                let count_key = cell_key(seed, salt::WEAK_COUNT, bank as u64, sub as u64, 0, 0);
                let count = poisson_for_key(count_key, lambda).min(bitlines as u64) as usize;
                // Pick distinct weak bitlines. Weak bitlines cluster:
                // with some probability a pick also weakens its
                // immediate neighbors (shared-contact defects), which
                // produces the multi-RNG-cell words of Figure 7.
                let mut picked = 0usize;
                let mut attempt = 0u64;
                let mark_weak =
                    |weak: &mut Vec<bool>, strengths: &mut Vec<f32>, bl: usize, key: u64| -> bool {
                        if weak[base + bl] {
                            return false;
                        }
                        weak[base + bl] = true;
                        let s = profile.weak_mean + profile.weak_sd * gauss_for_key(key);
                        strengths[base + bl] = s.max(profile.weak_floor) as f32;
                        true
                    };
                while picked < count && attempt < 64 * count as u64 + 64 {
                    let k = cell_key(seed, salt::WEAK_PICK, bank as u64, sub as u64, attempt, 0);
                    let bl = (splitmix64(k) % bitlines as u64) as usize;
                    attempt += 1;
                    if !mark_weak(&mut weak, &mut strengths, bl, splitmix64(k)) {
                        continue;
                    }
                    picked += 1;
                    // Clustered neighbors (do not count against `count`).
                    let u1 = to_unit_f64(splitmix64(k ^ 0x11));
                    if u1 < profile.weak_neighbor1_p && bl + 1 < bitlines {
                        mark_weak(&mut weak, &mut strengths, bl + 1, splitmix64(k ^ 0x22));
                    }
                    let u2 = to_unit_f64(splitmix64(k ^ 0x33));
                    if u2 < profile.weak_neighbor2_p && bl + 2 < bitlines {
                        mark_weak(&mut weak, &mut strengths, bl + 2, splitmix64(k ^ 0x44));
                    }
                }
                // Cluster defect sites: a group of adjacent bitlines with
                // near-metastable strength (Figure 7's 3-4-RNG-cell words).
                let site_key = cell_key(seed, salt::CLUSTER, bank as u64, sub as u64, 0, 0);
                let sites = poisson_for_key(site_key, profile.cluster_sites_per_subarray);
                for s in 0..sites {
                    let k = cell_key(seed, salt::CLUSTER, bank as u64, sub as u64, s + 1, 1);
                    let width = profile.cluster_width.max(1).min(bitlines);
                    let start = (splitmix64(k) % (bitlines - width + 1) as u64) as usize;
                    for (j, bl) in (start..start + width).enumerate() {
                        weak[base + bl] = true;
                        let g = gauss_for_key(splitmix64(k ^ (j as u64 + 0x55)));
                        let v = profile.cluster_strength_mean + profile.cluster_strength_sd * g;
                        strengths[base + bl] = v.max(profile.weak_floor) as f32;
                    }
                }
            }
        }

        VariationMap {
            geometry,
            subarrays,
            strengths,
            weak,
        }
    }

    #[inline]
    fn index(&self, bank: usize, sub: usize, bitline: usize) -> usize {
        (bank * self.subarrays + sub) * self.geometry.bitlines() + bitline
    }

    /// Number of subarrays per bank in this map.
    #[inline]
    pub fn subarrays(&self) -> usize {
        self.subarrays
    }

    /// Drive strength of a bitline's sense amplifier in a subarray.
    #[inline]
    pub fn strength(&self, bank: usize, sub: usize, bitline: usize) -> f64 {
        self.strengths[self.index(bank, sub, bitline)] as f64
    }

    /// Whether the bitline is one of the weak (failure-prone) ones.
    #[inline]
    pub fn is_weak(&self, bank: usize, sub: usize, bitline: usize) -> bool {
        self.weak[self.index(bank, sub, bitline)]
    }

    /// The weak bitline indices of one subarray, ascending.
    pub fn weak_bitlines(&self, bank: usize, sub: usize) -> Vec<usize> {
        let bitlines = self.geometry.bitlines();
        (0..bitlines)
            .filter(|&bl| self.is_weak(bank, sub, bl))
            .collect()
    }
}

/// Deterministic Poisson sample (Knuth's algorithm) for a key.
fn poisson_for_key(key: u64, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    let mut state = key;
    loop {
        state = splitmix64(state.wrapping_add(0x9E37_79B9));
        p *= to_unit_f64(state).max(1e-300);
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

/// Per-cell fixed latent parameters, derived on demand.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellLatents {
    /// Fixed margin offset in volts (manufacturing variation).
    pub eps_v: f64,
    /// Coupling weight to the left-adjacent bitline, volts (≥ 0).
    pub coupl_left_v: f64,
    /// Coupling weight to the right-adjacent bitline, volts (≥ 0).
    pub coupl_right_v: f64,
    /// Charge-orientation preference, volts (signed).
    pub charge_pref_v: f64,
    /// Temperature-sensitivity multiplier (mean 1; can be negative).
    pub temp_sens: f64,
}

/// Derives the latent parameters of one cell.
pub fn cell_latents(seed: u64, profile: &PhysicsProfile, cell: CellAddr) -> CellLatents {
    let (b, r, c, i) = (
        cell.bank as u64,
        cell.row as u64,
        cell.col as u64,
        cell.bit as u64,
    );
    let g = |s: u64| {
        gauss_for_key(cell_key(
            seed,
            s,
            b,
            r,
            c.wrapping_mul(64).wrapping_add(i),
            0,
        ))
    };
    CellLatents {
        eps_v: profile.cell_sd_v * g(salt::EPS),
        coupl_left_v: (profile.adj_coupling_v + profile.adj_coupling_sd_v * g(salt::COUPL_L))
            .max(0.0),
        coupl_right_v: (profile.adj_coupling_v + profile.adj_coupling_sd_v * g(salt::COUPL_R))
            .max(0.0),
        charge_pref_v: profile.charge_delta_v + profile.charge_pref_sd_v * g(salt::CHARGE),
        temp_sens: 1.0 + profile.temp_sens_sd * g(salt::TEMP),
    }
}

/// Deterministic uniform draw in `[0,1)` for a cell and salt — used by
/// the retention and startup models.
pub fn cell_uniform(seed: u64, salt: u64, cell: CellAddr) -> f64 {
    let (b, r, c, i) = (
        cell.bank as u64,
        cell.row as u64,
        cell.col as u64,
        cell.bit as u64,
    );
    unit_for_key(cell_key(
        seed,
        salt,
        b,
        r,
        c.wrapping_mul(64).wrapping_add(i),
        1,
    ))
}

/// Deterministic standard-normal draw for a cell and salt.
pub fn cell_gauss(seed: u64, salt: u64, cell: CellAddr) -> f64 {
    let (b, r, c, i) = (
        cell.bank as u64,
        cell.row as u64,
        cell.col as u64,
        cell.bit as u64,
    );
    gauss_for_key(cell_key(
        seed,
        salt,
        b,
        r,
        c.wrapping_mul(64).wrapping_add(i),
        2,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manufacturer::Manufacturer;

    fn map() -> VariationMap {
        let g = Geometry::default();
        VariationMap::build(1234, g, &Manufacturer::A.profile())
    }

    #[test]
    fn deterministic_across_builds() {
        let a = map();
        let b = map();
        assert_eq!(a.strength(0, 0, 5), b.strength(0, 0, 5));
        assert_eq!(a.weak_bitlines(3, 1), b.weak_bitlines(3, 1));
    }

    #[test]
    fn different_seeds_differ() {
        let g = Geometry::default();
        let p = Manufacturer::A.profile();
        let a = VariationMap::build(1, g, &p);
        let b = VariationMap::build(2, g, &p);
        assert_ne!(a.weak_bitlines(0, 0), b.weak_bitlines(0, 0));
    }

    #[test]
    fn weak_counts_are_plausible() {
        let m = map();
        let g = Geometry::default();
        let mut total = 0usize;
        let mut subarrays_with_weak = 0usize;
        for bank in 0..g.banks {
            for sub in 0..m.subarrays() {
                let w = m.weak_bitlines(bank, sub).len();
                total += w;
                if w > 0 {
                    subarrays_with_weak += 1;
                }
            }
        }
        let per_sub = total as f64 / (g.banks * m.subarrays()) as f64;
        // Poisson(7) primaries plus clustered neighbors (~×1.55) plus
        // ~1 cluster site of width 4 per subarray: expect roughly 15.
        assert!(
            per_sub > 6.0 && per_sub < 25.0,
            "mean weak per subarray {per_sub}"
        );
        assert!(
            subarrays_with_weak >= g.banks,
            "most subarrays have weak bitlines"
        );
    }

    #[test]
    fn weak_bitlines_are_weaker_than_strong() {
        let m = map();
        let weak = m.weak_bitlines(0, 0);
        if let Some(&bl) = weak.first() {
            let strong_bl = (0..1024).find(|b| !m.is_weak(0, 0, *b)).unwrap();
            assert!(m.strength(0, 0, bl) < m.strength(0, 0, strong_bl));
        }
        // Strong strengths cluster near the profile mean.
        let p = Manufacturer::A.profile();
        let s = m.strength(0, 0, (0..1024).find(|b| !m.is_weak(0, 0, *b)).unwrap());
        assert!((s - p.strong_mean).abs() < 6.0 * p.strong_sd);
    }

    #[test]
    fn subarray_weak_sets_are_independent() {
        let m = map();
        // Figure 4: different subarrays have different failing columns.
        // With 1024 bitlines and ~7 weak each, identical sets would be
        // astronomically unlikely.
        let a = m.weak_bitlines(0, 0);
        let b = m.weak_bitlines(0, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn latents_are_deterministic_and_spread() {
        let p = Manufacturer::A.profile();
        let c = CellAddr::new(0, 10, 3, 7);
        let l1 = cell_latents(99, &p, c);
        let l2 = cell_latents(99, &p, c);
        assert_eq!(l1, l2);
        let other = cell_latents(99, &p, CellAddr::new(0, 10, 3, 8));
        assert_ne!(l1, other);
        assert!(l1.coupl_left_v >= 0.0 && l1.coupl_right_v >= 0.0);
    }

    #[test]
    fn poisson_mean_is_close() {
        let lambda = 7.0;
        let n = 20_000u64;
        let mut sum = 0u64;
        for i in 0..n {
            sum += poisson_for_key(splitmix64(i), lambda);
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.15, "poisson mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        assert_eq!(poisson_for_key(42, 0.0), 0);
        assert_eq!(poisson_for_key(42, -1.0), 0);
    }
}
