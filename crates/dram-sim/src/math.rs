//! Small numeric helpers used by the physics model: a stateless
//! counter-based pseudo-random generator for latent manufacturing
//! parameters, and the standard normal CDF.
//!
//! The latent parameters of billions of cells cannot all be materialized,
//! so each cell's parameters are derived on demand from a
//! counter-based hash of `(device seed, salt, cell coordinates)`. This
//! makes them *fixed at manufacturing time* (the property Section 5.4 of
//! the paper relies on) without storing per-cell state.

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
///
/// Used as a stateless counter-based generator: feed it a unique key and
/// it returns a well-distributed 64-bit value.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines a seed, a salt, and up to four coordinates into one key.
#[inline]
pub fn cell_key(seed: u64, salt: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut k = splitmix64(seed ^ salt.wrapping_mul(0xA24B_AED4_963E_E407));
    k = splitmix64(k ^ a.wrapping_mul(0x9FB2_1C65_1E98_DF25));
    k = splitmix64(k ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    k = splitmix64(k ^ c.wrapping_mul(0x1656_67B1_9E37_79F9));
    splitmix64(k ^ d)
}

/// Maps a 64-bit value to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn to_unit_f64(x: u64) -> f64 {
    // 53 high bits -> [0,1) with full double precision.
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic standard-normal draw for the given key.
///
/// Uses the Box–Muller transform over two decorrelated hashes of the key.
#[inline]
pub fn gauss_for_key(key: u64) -> f64 {
    let u1 = to_unit_f64(splitmix64(key ^ 0xD1B5_4A32_D192_ED03)).max(1e-300);
    let u2 = to_unit_f64(splitmix64(key ^ 0x8CB9_2BA7_2F3D_8DD7));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A deterministic uniform `[0,1)` draw for the given key.
#[inline]
pub fn unit_for_key(key: u64) -> f64 {
    to_unit_f64(splitmix64(key ^ 0x5851_F42D_4C95_7F2D))
}

/// The error function `erf(x)`, accurate to ~1e-12.
///
/// Implemented with the Abramowitz & Stegun 7.1.26-style rational
/// approximation refined by a short Taylor/continued-fraction hybrid:
/// series for small `|x|`, continued fraction of `erfc` for large `|x|`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x)`.
///
/// Series expansion for small arguments and the Lentz continued fraction
/// for large ones; relative error below 1e-12 over the real line.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.0 {
        // erf by Taylor series: erf(x) = 2/sqrt(pi) * sum (-1)^n x^(2n+1)/(n!(2n+1))
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        let mut n = 0u32;
        loop {
            n += 1;
            term *= -x2 / n as f64;
            let add = term / (2 * n + 1) as f64;
            sum += add;
            if add.abs() < 1e-17 * sum.abs().max(1e-300) || n > 200 {
                break;
            }
        }
        1.0 - sum * 2.0 / std::f64::consts::PI.sqrt()
    } else {
        // Continued fraction: erfc(x) = exp(-x^2)/(x*sqrt(pi)) * 1/(1 + 1/(2x^2) / (1 + 2/(2x^2) / (1 + ...)))
        // evaluated with the modified Lentz algorithm.
        // Classical form erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + ...)))).
        let x2 = x * x;
        let tiny = 1e-300;
        let mut b = x;
        let mut a;
        let f = b.max(tiny);
        let mut c = f;
        let mut d = 0.0;
        let mut result = f;
        for n in 1..300 {
            a = n as f64 / 2.0;
            b = x;
            d = b + a * d;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + a / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = c * d;
            result *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                break;
            }
        }
        (-x2).exp() / std::f64::consts::PI.sqrt() / result
    }
}

/// Standard normal cumulative distribution function `Phi(x)`.
#[inline]
pub fn phi(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of [`phi`] by bisection + Newton polish (used only in tests and
/// calibration tooling; not on hot paths).
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "phi_inv domain is (0,1), got {p}");
    // Beasley-Springer-Moro style initial guess, then Newton.
    let mut x = {
        let q = p - 0.5;
        if q.abs() <= 0.425 {
            let r = 0.180625 - q * q;
            q * (((2509.080928730122 * r + 33430.57558358813) * r + 67265.7709270087) * r
                + 45921.95393154987)
                / (((28729.08573572194 * r + 39307.89580009271) * r + 21213.79430158816) * r + 1.0)
                * 1e-4
                + q * 2.0
        } else {
            let r = if q < 0.0 { p } else { 1.0 - p };
            let t = (-2.0 * r.ln()).sqrt();
            let v = t
                - (2.515517 + 0.802853 * t + 0.010328 * t * t)
                    / (1.0 + 1.432788 * t + 0.189269 * t * t + 0.001308 * t * t * t);
            if q < 0.0 {
                -v
            } else {
                v
            }
        }
    };
    for _ in 0..60 {
        let err = phi(x) - p;
        let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        if pdf < 1e-300 {
            break;
        }
        let step = err / pdf;
        x -= step;
        if step.abs() < 1e-13 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Avalanche sanity: flipping one input bit flips many output bits.
        let a = splitmix64(0x1234);
        let b = splitmix64(0x1235);
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000u64 {
            let u = to_unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gauss_mean_and_var_are_standard() {
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for i in 0..n {
            let g = gauss_for_key(i);
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
            (-1.0, -0.8427007929497149),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-10,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_large_argument() {
        // erfc(5) = 1.5374597944280348e-12
        assert!((erfc(5.0) - 1.5374597944280348e-12).abs() < 1e-22);
        // erfc(10) = 2.0884875837625447e-45
        assert!((erfc(10.0) / 2.0884875837625447e-45 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phi_symmetry_and_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-14);
        assert!((phi(1.959963984540054) - 0.975).abs() < 1e-10);
        for x in [-3.0, -1.0, 0.3, 2.2] {
            assert!((phi(x) + phi(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phi_inv_round_trips() {
        for p in [0.001, 0.025, 0.3, 0.5, 0.84, 0.999] {
            let x = phi_inv(p);
            assert!((phi(x) - p).abs() < 1e-9, "p {p} -> x {x} -> {}", phi(x));
        }
    }
}
