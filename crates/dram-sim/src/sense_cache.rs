//! Per-device sensing cache: memoized bit classification for the READ
//! hot path.
//!
//! The activation-failure model splits a word's bits into three classes
//! on first touch of a `(bank, row, col)` word at a given tRCD:
//!
//! * **always-correct** — `base > SLOW_PATH_CUTOFF_V`: the bitline is
//!   strong enough at this tRCD that the failure probability is below
//!   10⁻¹⁵; these bits are recorded in a 64-bit skip mask and never
//!   touched again. The whole-word common case (all bits skippable)
//!   collapses to a single map lookup.
//! * **deterministic-flip** — margin so negative that `p == 1.0`; the
//!   memoized probability saturates and the Bernoulli draw consumes no
//!   entropy, exactly like the slow path.
//! * **stochastic** — everything in between; the resolved
//!   [`CellLatents`] and the pattern-independent `base` margin term are
//!   memoized, so a repeat READ only needs the data-dependent
//!   charge/coupling terms, one Φ (the rational [`crate::probit`]
//!   kernel), and one Bernoulli draw — and when the data context is
//!   unchanged, not even that: the resolved `p` itself is reused.
//!
//! ## Invalidation rules
//!
//! Classification (skip mask + latents) depends on tRCD, process
//! variation, and geometry — never on stored data or temperature. It is
//! invalidated by timing-register changes, via a per-word tRCD
//! bit-pattern check (the backstop — READ carries tRCD as an argument)
//! and a cache-wide `class_epoch` bumped by
//! `DramDevice::notify_timing_change` (the explicit path driven by the
//! memory controller's timing writes).
//!
//! Resolution (the memoized `p` per stochastic cell) additionally
//! depends on temperature and on the stored data of the word and its
//! column neighbors (adjacent-bitline coupling reaches across word
//! boundaries at bits 0 and `word_bits − 1`). It is invalidated two
//! ways:
//!
//! * `set_temperature` bumps the cache-wide `resolve_epoch`;
//! * every non-skip READ compares a `[left, this, right]` snapshot of
//!   the coupling context against the one the memoized `p` was
//!   resolved under, which covers *every* data mutation — `write`,
//!   `poke`, and the in-read restore of a failed sense — exactly and
//!   only when the margins actually changed.
//!
//! The snapshot compare is deliberately the *only* data-invalidation
//! mechanism: an explicit mark-dirty hook on writes would force a
//! re-resolve on every Algorithm 2 pass (harvest corrupts the word,
//! the restore write puts the original back), even though the context
//! round-trips to exactly the state the probabilities were resolved
//! under. With the snapshot compare, the restore makes the memoized
//! values valid again for free and steady-state sampling stays on the
//! hit path.
//!
//! The epoch counters make cache-wide invalidation O(1): no vectors are
//! cleared, stale entries simply fail their epoch check on next touch.

use std::collections::HashMap;

use crate::geometry::WordAddr;
use crate::variation::CellLatents;

/// Effectiveness counters of a device's sensing cache.
///
/// Monotone over the device's lifetime; harvest engines snapshot and
/// diff them to derive per-batch rates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SenseCacheStats {
    /// Word classification events (first touch or reclassification
    /// after a tRCD change).
    pub classified_words: u64,
    /// READs fully answered by the skip mask (every bit always-correct
    /// at this tRCD): no latents, no Φ, no noise draw.
    pub skip_word_reads: u64,
    /// READs of words with stochastic bits whose memoized probabilities
    /// were reused (context snapshot and epochs matched).
    pub hit_reads: u64,
    /// READs that had to re-resolve per-cell probabilities (first
    /// touch, data-context change, or invalidation).
    pub resolve_reads: u64,
    /// Cache-wide invalidation events (timing re-key or temperature
    /// change).
    pub flushes: u64,
}

impl SenseCacheStats {
    /// Fraction of sensing READs answered from memoized state
    /// (skip-mask or resolved-probability hits). 0.0 when no sensing
    /// READ has happened yet.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.skip_word_reads + self.hit_reads;
        let total = hits + self.resolve_reads;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Total sensing READs that consulted the cache.
    pub fn sensed_reads(&self) -> u64 {
        self.skip_word_reads + self.hit_reads + self.resolve_reads
    }
}

/// A stochastic (or deterministic-flip) cell within a cached word.
#[derive(Debug, Clone)]
pub(crate) struct FastCell {
    /// Bit index within the word.
    pub(crate) bit: usize,
    /// Pattern- and temperature-independent margin term
    /// (`settle(tRCD) · strength · row_factor − θ`).
    pub(crate) base: f64,
    /// Resolved per-cell latents (five Gaussians — the expensive part).
    pub(crate) lat: CellLatents,
    /// Memoized failure probability under the current context snapshot.
    /// Only meaningful when the owning word is resolved.
    pub(crate) p: f64,
}

/// Cached classification and resolution state of one DRAM word.
#[derive(Debug, Clone, Default)]
pub(crate) struct WordState {
    /// Whether classification has ever run for this word.
    pub(crate) classified: bool,
    /// `SenseCache::class_epoch` at classification time.
    pub(crate) class_epoch: u32,
    /// Bit pattern of the tRCD the classification was computed for.
    pub(crate) trcd_bits: u64,
    /// Bits that are always-correct at this tRCD.
    pub(crate) skip_mask: u64,
    /// The non-skippable cells, ascending bit order (the order the
    /// slow path draws noise in).
    pub(crate) active: Vec<FastCell>,
    /// Whether the `p` values in `active` are valid.
    pub(crate) resolved: bool,
    /// `SenseCache::resolve_epoch` at resolution time.
    pub(crate) resolve_epoch: u32,
    /// `[left col word, this word, right col word]` snapshot the
    /// probabilities were resolved under (0 for missing neighbors).
    pub(crate) ctx: [u64; 3],
}

/// The per-device sensing cache. See the module docs for the
/// classification and invalidation contract.
#[derive(Debug, Default)]
pub(crate) struct SenseCache {
    /// Cached state per touched word.
    pub(crate) words: HashMap<WordAddr, WordState>,
    /// Bumped when timing registers change: classifications from older
    /// epochs are stale.
    pub(crate) class_epoch: u32,
    /// Bumped when temperature changes: resolutions from older epochs
    /// are stale.
    pub(crate) resolve_epoch: u32,
    /// Last sub-guard tRCD the timing hook saw, for dedup (the sampler
    /// re-writes the same reduced tRCD every pass).
    last_trcd_bits: Option<u64>,
    /// Effectiveness counters.
    pub(crate) stats: SenseCacheStats,
}

impl SenseCache {
    /// Timing-register hook: re-keys the classification epoch when the
    /// sub-guard tRCD actually changes (idempotent for repeated writes
    /// of the same value).
    pub(crate) fn rekey_trcd(&mut self, trcd_bits: u64) {
        if self.last_trcd_bits == Some(trcd_bits) {
            return;
        }
        self.last_trcd_bits = Some(trcd_bits);
        self.class_epoch = self.class_epoch.wrapping_add(1);
        self.stats.flushes += 1;
    }

    /// Temperature hook: invalidates every memoized probability.
    pub(crate) fn invalidate_resolved(&mut self) {
        self.resolve_epoch = self.resolve_epoch.wrapping_add(1);
        self.stats.flushes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rekey_is_idempotent_for_repeated_trcd() {
        let mut cache = SenseCache::default();
        let e0 = cache.class_epoch;
        cache.rekey_trcd(10.0f64.to_bits());
        let e1 = cache.class_epoch;
        assert_ne!(e0, e1, "first sub-guard write re-keys");
        cache.rekey_trcd(10.0f64.to_bits());
        assert_eq!(cache.class_epoch, e1, "same value again: no re-key");
        cache.rekey_trcd(9.5f64.to_bits());
        assert_ne!(cache.class_epoch, e1, "different value re-keys");
        assert_eq!(cache.stats.flushes, 2);
    }

    #[test]
    fn temperature_invalidation_bumps_resolve_epoch_only() {
        let mut cache = SenseCache::default();
        let class = cache.class_epoch;
        let resolve = cache.resolve_epoch;
        cache.invalidate_resolved();
        assert_eq!(cache.class_epoch, class);
        assert_ne!(cache.resolve_epoch, resolve);
        assert_eq!(cache.stats.flushes, 1);
    }

    #[test]
    fn hit_rate_counts_skip_and_hit_over_sensed() {
        let stats = SenseCacheStats {
            classified_words: 3,
            skip_word_reads: 60,
            hit_reads: 30,
            resolve_reads: 10,
            flushes: 0,
        };
        assert!((stats.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(stats.sensed_reads(), 100);
        assert_eq!(SenseCacheStats::default().hit_rate(), 0.0);
    }
}
