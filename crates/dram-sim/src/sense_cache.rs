//! Per-device sensing cache: memoized bit classification for the READ
//! hot path.
//!
//! The activation-failure model splits a word's bits into three classes
//! on first touch of a `(bank, row, col)` word at a given tRCD:
//!
//! * **always-correct** — `base > SLOW_PATH_CUTOFF_V`: the bitline is
//!   strong enough at this tRCD that the failure probability is below
//!   10⁻¹⁵; these bits are recorded in a 64-bit skip mask and never
//!   touched again. The whole-word common case (all bits skippable)
//!   collapses to a single map lookup.
//! * **deterministic-flip** — margin so negative that `p == 1.0`; the
//!   memoized probability saturates and the Bernoulli draw consumes no
//!   entropy, exactly like the slow path.
//! * **stochastic** — everything in between; the resolved
//!   [`CellLatents`] and the pattern-independent `base` margin term are
//!   memoized, so a repeat READ only needs the data-dependent
//!   charge/coupling terms, one Φ (the rational [`crate::probit`]
//!   kernel), and one Bernoulli draw — and when the data context is
//!   unchanged, not even that: the resolved `p` itself is reused.
//!
//! ## Invalidation rules
//!
//! Classification (skip mask + latents) depends on tRCD, process
//! variation, and geometry — never on stored data or temperature. It is
//! invalidated by timing-register changes, via a per-word tRCD
//! bit-pattern check (the backstop — READ carries tRCD as an argument)
//! and a cache-wide `class_epoch` bumped by
//! `DramDevice::notify_timing_change` (the explicit path driven by the
//! memory controller's timing writes).
//!
//! Resolution (the memoized `p` per stochastic cell) additionally
//! depends on temperature and on the stored data of the word and its
//! column neighbors (adjacent-bitline coupling reaches across word
//! boundaries at bits 0 and `word_bits − 1`). It is invalidated two
//! ways:
//!
//! * `set_temperature` bumps the cache-wide `resolve_epoch`;
//! * every non-skip READ compares a `[left, this, right]` snapshot of
//!   the coupling context against the one the memoized `p` was
//!   resolved under, which covers *every* data mutation — `write`,
//!   `poke`, and the in-read restore of a failed sense — exactly and
//!   only when the margins actually changed.
//!
//! The snapshot compare is deliberately the *only* data-invalidation
//! mechanism: an explicit mark-dirty hook on writes would force a
//! re-resolve on every Algorithm 2 pass (harvest corrupts the word,
//! the restore write puts the original back), even though the context
//! round-trips to exactly the state the probabilities were resolved
//! under. With the snapshot compare, the restore makes the memoized
//! values valid again for free and steady-state sampling stays on the
//! hit path.
//!
//! The epoch counters make cache-wide invalidation O(1): no vectors are
//! cleared, stale entries simply fail their epoch check on next touch.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::geometry::WordAddr;
use crate::probit::{fast_phi, fast_phi4, LANES};
use crate::variation::CellLatents;

/// Multiplicative-fold hasher for the word map.
///
/// The READ hot path performs one map lookup per sensed word; the
/// default SipHash costs more than the whole rest of a cache hit. Keys
/// are short fixed-shape `(bank, row, col)` triples chosen by the
/// harvester, not attacker-controlled input, so a splitmix-style
/// multiplicative fold (full 64-bit avalanche in `finish`) is both safe
/// and several times faster.
#[derive(Debug, Default, Clone)]
pub(crate) struct AddrHash(u64);

impl Hasher for AddrHash {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.0 = (self.0 ^ v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: avalanche the folded state so HashMap's
        // low-bit bucket index sees every key bit.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// [`BuildHasherDefault`] alias for the word map.
pub(crate) type AddrHashBuilder = BuildHasherDefault<AddrHash>;

/// Effectiveness counters of a device's sensing cache.
///
/// Monotone over the device's lifetime; harvest engines snapshot and
/// diff them to derive per-batch rates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SenseCacheStats {
    /// Word classification events (first touch or reclassification
    /// after a tRCD change).
    pub classified_words: u64,
    /// READs fully answered by the skip mask (every bit always-correct
    /// at this tRCD): no latents, no Φ, no noise draw.
    pub skip_word_reads: u64,
    /// READs of words with stochastic bits whose memoized probabilities
    /// were reused (context snapshot and epochs matched).
    pub hit_reads: u64,
    /// READs that had to re-resolve per-cell probabilities (first
    /// touch, data-context change, or invalidation). A READ consuming a
    /// probability prefetched by `SenseCache::resolve_words` counts
    /// here too — the resolve work happened, just earlier.
    pub resolve_reads: u64,
    /// Cache-wide invalidation events (timing re-key or temperature
    /// change).
    pub flushes: u64,
    /// Stochastic cells resolved through the bulk SoA kernel
    /// (`SenseCache::resolve_words`).
    pub bulk_cells: u64,
    /// Of [`SenseCacheStats::bulk_cells`], the cells evaluated in full
    /// four-lane vector groups (the remainder ran the scalar kernel).
    pub bulk_lane_cells: u64,
}

impl SenseCacheStats {
    /// Fraction of sensing READs answered from memoized state
    /// (skip-mask or resolved-probability hits). 0.0 when no sensing
    /// READ has happened yet.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.skip_word_reads + self.hit_reads;
        let total = hits + self.resolve_reads;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Total sensing READs that consulted the cache.
    pub fn sensed_reads(&self) -> u64 {
        self.skip_word_reads + self.hit_reads + self.resolve_reads
    }

    /// Fraction of bulk-resolved cells that rode full four-lane vector
    /// groups. 0.0 before any bulk resolve has run.
    pub fn lane_utilization(&self) -> f64 {
        if self.bulk_cells == 0 {
            0.0
        } else {
            self.bulk_lane_cells as f64 / self.bulk_cells as f64
        }
    }
}

/// A stochastic (or deterministic-flip) cell within a cached word —
/// the *cold* classification data, touched only when (re)resolving.
/// The per-READ hot path reads the structure-of-arrays companions
/// [`WordState::ps`] / [`WordState::hot_bits`] instead, so a cache hit
/// streams two dense arrays rather than one ~64-byte record per cell.
#[derive(Debug, Clone)]
pub(crate) struct FastCell {
    /// Bit index within the word.
    pub(crate) bit: usize,
    /// Pattern- and temperature-independent margin term
    /// (`settle(tRCD) · strength · row_factor − θ`).
    pub(crate) base: f64,
    /// Resolved per-cell latents (five Gaussians — the expensive part).
    pub(crate) lat: CellLatents,
}

/// Cached classification and resolution state of one DRAM word.
#[derive(Debug, Clone, Default)]
pub(crate) struct WordState {
    /// Whether classification has ever run for this word.
    pub(crate) classified: bool,
    /// `SenseCache::class_epoch` at classification time.
    pub(crate) class_epoch: u32,
    /// Bit pattern of the tRCD the classification was computed for.
    pub(crate) trcd_bits: u64,
    /// Bits that are always-correct at this tRCD.
    pub(crate) skip_mask: u64,
    /// The non-skippable cells, ascending bit order (the order the
    /// slow path draws noise in).
    pub(crate) active: Vec<FastCell>,
    /// Memoized failure probabilities, parallel to `active` (SoA hot
    /// array). Only meaningful when the word is resolved.
    pub(crate) ps: Vec<f64>,
    /// Bit indices, parallel to `active` (SoA hot array; `u8` keeps the
    /// whole word's draw state in a couple of cache lines).
    pub(crate) hot_bits: Vec<u8>,
    /// Whether the `p` values in `active` are valid.
    pub(crate) resolved: bool,
    /// `SenseCache::resolve_epoch` at resolution time.
    pub(crate) resolve_epoch: u32,
    /// `[left col word, this word, right col word]` snapshot the
    /// probabilities were resolved under (0 for missing neighbors).
    pub(crate) ctx: [u64; 3],
    /// Whether the current resolution was produced by the bulk
    /// prefetch ([`SenseCache::resolve_words`]) and has not been
    /// consumed by a READ yet. Purely a stats-accounting flag: the
    /// first READ that uses a prefetched resolution books itself as a
    /// resolve (the work happened, just earlier), keeping the counters
    /// identical to the non-prefetching fast path.
    pub(crate) prefetched: bool,
}

/// Reusable structure-of-arrays buffers for one bulk resolve run.
///
/// The gather phase (owned by `DramDevice::resolve_run`, which can see
/// the stored data) flattens every stale word's cell margins into
/// `args`; [`SenseCache::resolve_words`] evaluates Φ over the whole
/// run with the four-lane probit kernel and scatters the probabilities
/// back through `spans`. All three vectors keep their capacity across
/// passes — the steady-state sampling loop performs no allocation
/// here.
#[derive(Debug, Default)]
pub(crate) struct ResolveArena {
    /// Φ arguments (`−margin · inv_sigma`), in gather order.
    pub(crate) args: Vec<f64>,
    /// Φ outputs, same order as `args`.
    pub(crate) probs: Vec<f64>,
    /// One entry per gathered word: address, the coupling-context
    /// snapshot its margins were computed under, and its cell count
    /// (consecutive in `args`/`probs`).
    pub(crate) spans: Vec<(WordAddr, [u64; 3], u32)>,
}

impl ResolveArena {
    /// Empties the buffers without releasing capacity.
    pub(crate) fn clear(&mut self) {
        self.args.clear();
        self.probs.clear();
        self.spans.clear();
    }
}

/// One entry of the dense hot-run table — the per-READ view of a run
/// word, packed so the steady-state sampling loop touches a few
/// sequential cache lines instead of a map bucket plus three heap
/// buffers per word. See [`SenseCache::build_hot_table`].
#[derive(Debug, Clone)]
pub(crate) struct HotWord {
    /// The word this entry serves.
    pub(crate) addr: WordAddr,
    /// Whether the entry can serve READs at all (the word was mapped
    /// and classification-current when the table was built).
    pub(crate) usable: bool,
    /// Coupling-context snapshot the pooled probabilities were
    /// resolved under.
    pub(crate) ctx: [u64; 3],
    /// `resolve_epoch` of the pooled probabilities (a deliberately
    /// mismatching sentinel when the word was unresolved at build).
    pub(crate) resolve_epoch: u32,
    /// Offset of this word's cells in the dense pools.
    pub(crate) off: u32,
    /// Stochastic-cell count (0 ⇒ the whole word is skip-masked).
    pub(crate) len: u32,
    /// Unconsumed bulk-prefetch flag. While the table is live this is
    /// the authoritative copy for run words — moved out of the map
    /// entry at build time and written back by
    /// [`SenseCache::retire_hot_table`] — so the first READ consuming
    /// a prefetched resolution books as a resolve exactly once, no
    /// matter which path serves it.
    pub(crate) prefetched: bool,
}

/// The per-device sensing cache. See the module docs for the
/// classification and invalidation contract.
#[derive(Debug, Default)]
pub(crate) struct SenseCache {
    /// Cached state per touched word.
    pub(crate) words: HashMap<WordAddr, WordState, AddrHashBuilder>,
    /// Dense hot-run table in pass order; valid while `hot_valid` and
    /// the epoch/tRCD stamps match.
    pub(crate) hot: Vec<HotWord>,
    /// Dense probability pool, indexed by `HotWord::off`/`len`.
    pub(crate) hot_ps: Vec<f64>,
    /// Dense bit-index pool, parallel to `hot_ps`.
    pub(crate) hot_bit_pool: Vec<u8>,
    /// Next expected table index. Algorithm 2 READs words in run
    /// order, so the common-case lookup is one address compare; a
    /// mismatch falls back to a linear scan (and re-syncs the cursor).
    pub(crate) hot_cursor: usize,
    /// Whether the hot table is populated.
    pub(crate) hot_valid: bool,
    /// `class_epoch` the table was built under.
    pub(crate) hot_class_epoch: u32,
    /// tRCD bit pattern the table was built under.
    pub(crate) hot_trcd_bits: u64,
    /// Bumped when timing registers change: classifications from older
    /// epochs are stale.
    pub(crate) class_epoch: u32,
    /// Bumped when temperature changes: resolutions from older epochs
    /// are stale.
    pub(crate) resolve_epoch: u32,
    /// Last sub-guard tRCD the timing hook saw, for dedup (the sampler
    /// re-writes the same reduced tRCD every pass).
    last_trcd_bits: Option<u64>,
    /// Hot-streak stamp of the last completed `resolve_run`: the word
    /// list it covered and the tRCD/epochs it ran under. When the next
    /// run matches the stamp exactly, every word it would gather is
    /// already resolved (Algorithm 2's restore round-trips the
    /// context), so the run is skipped outright. The stamp is purely an
    /// optimization gate — READs re-validate epochs and context
    /// regardless, so a stale skip can never produce wrong bits.
    pub(crate) run_words: Vec<WordAddr>,
    /// tRCD bit pattern of the stamped run.
    pub(crate) run_trcd_bits: u64,
    /// `class_epoch` of the stamped run.
    pub(crate) run_class_epoch: u32,
    /// `resolve_epoch` of the stamped run.
    pub(crate) run_resolve_epoch: u32,
    /// Whether the stamp is populated.
    pub(crate) run_valid: bool,
    /// Effectiveness counters.
    pub(crate) stats: SenseCacheStats,
}

impl SenseCache {
    /// Timing-register hook: re-keys the classification epoch when the
    /// sub-guard tRCD actually changes (idempotent for repeated writes
    /// of the same value).
    pub(crate) fn rekey_trcd(&mut self, trcd_bits: u64) {
        if self.last_trcd_bits == Some(trcd_bits) {
            return;
        }
        self.last_trcd_bits = Some(trcd_bits);
        self.class_epoch = self.class_epoch.wrapping_add(1);
        self.stats.flushes += 1;
    }

    /// Temperature hook: invalidates every memoized probability.
    pub(crate) fn invalidate_resolved(&mut self) {
        self.resolve_epoch = self.resolve_epoch.wrapping_add(1);
        self.stats.flushes += 1;
    }

    /// Bulk-resolves a gathered run of words: evaluates Φ over the
    /// arena's SoA argument buffer with the four-lane probit kernel
    /// (scalar kernel on the non-multiple-of-four remainder — both are
    /// bit-identical to [`fast_phi`] by construction) and scatters the
    /// probabilities back into each word's `FastCell`s, marking them
    /// resolved-and-prefetched under the context snapshot the gather
    /// recorded.
    pub(crate) fn resolve_words(&mut self, arena: &mut ResolveArena) {
        let n = arena.args.len();
        if n == 0 {
            return;
        }
        arena.probs.clear();
        arena.probs.resize(n, 0.0);
        let full = n - n % LANES;
        let mut i = 0;
        while i < full {
            let out = fast_phi4([
                arena.args[i],
                arena.args[i + 1],
                arena.args[i + 2],
                arena.args[i + 3],
            ]);
            arena.probs[i..i + LANES].copy_from_slice(&out);
            i += LANES;
        }
        for j in full..n {
            arena.probs[j] = fast_phi(arena.args[j]);
        }
        self.stats.bulk_cells += n as u64;
        self.stats.bulk_lane_cells += full as u64;

        let mut off = 0usize;
        for &(addr, ctx, cells) in &arena.spans {
            let cells = cells as usize;
            let Some(state) = self.words.get_mut(&addr) else {
                off += cells;
                continue;
            };
            state.ps.copy_from_slice(&arena.probs[off..off + cells]);
            state.resolved = true;
            state.resolve_epoch = self.resolve_epoch;
            state.ctx = ctx;
            state.prefetched = true;
            off += cells;
        }
    }

    /// Tears down the hot-run table, writing unconsumed bulk-prefetch
    /// flags back to their map entries so the resolve-accounting
    /// contract survives a rebuild. A flag is only written back when
    /// the map entry still holds the exact resolution it was attached
    /// to (same epoch and context snapshot) — a superseded resolution
    /// already booked its own resolve READ, so restoring an orphaned
    /// flag would double-count. Idempotent.
    pub(crate) fn retire_hot_table(&mut self) {
        if !self.hot_valid {
            return;
        }
        self.hot_valid = false;
        for k in 0..self.hot.len() {
            if self.hot[k].usable && self.hot[k].prefetched {
                let (addr, epoch, ctx) = {
                    let hw = &self.hot[k];
                    (hw.addr, hw.resolve_epoch, hw.ctx)
                };
                if let Some(state) = self.words.get_mut(&addr) {
                    if state.resolved && state.resolve_epoch == epoch && state.ctx == ctx {
                        state.prefetched = true;
                    }
                }
            }
        }
    }

    /// (Re)builds the dense hot-run table for a run of words, copying
    /// each word's resolved probabilities and bit indices into
    /// contiguous pools. Words that are unmapped or
    /// classification-stale get an unusable placeholder (keeping table
    /// order aligned with the run); unresolved words get a sentinel
    /// resolve epoch so READs fall back to the map path. Bulk-prefetch
    /// flags move from the map entries into the table (see
    /// [`HotWord::prefetched`]).
    ///
    /// Purely an acceleration structure: READs re-validate the epochs
    /// and the live coupling context against the table's snapshots, so
    /// a stale entry can never produce wrong bits — it just routes the
    /// READ back through the word map.
    pub(crate) fn build_hot_table(&mut self, words: &[WordAddr], trcd_bits: u64) {
        self.retire_hot_table();
        self.hot.clear();
        self.hot_ps.clear();
        self.hot_bit_pool.clear();
        for &addr in words {
            let mut hw = HotWord {
                addr,
                usable: false,
                ctx: [0; 3],
                resolve_epoch: 0,
                off: self.hot_ps.len() as u32,
                len: 0,
                prefetched: false,
            };
            if let Some(state) = self.words.get_mut(&addr) {
                if state.classified
                    && state.class_epoch == self.class_epoch
                    && state.trcd_bits == trcd_bits
                {
                    hw.usable = true;
                    hw.len = state.ps.len() as u32;
                    hw.ctx = state.ctx;
                    hw.resolve_epoch = if state.resolved {
                        state.resolve_epoch
                    } else {
                        self.resolve_epoch.wrapping_sub(1)
                    };
                    hw.prefetched = std::mem::take(&mut state.prefetched);
                    self.hot_ps.extend_from_slice(&state.ps);
                    self.hot_bit_pool.extend_from_slice(&state.hot_bits);
                }
            }
            self.hot.push(hw);
        }
        self.hot_cursor = 0;
        self.hot_valid = true;
        self.hot_class_epoch = self.class_epoch;
        self.hot_trcd_bits = trcd_bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rekey_is_idempotent_for_repeated_trcd() {
        let mut cache = SenseCache::default();
        let e0 = cache.class_epoch;
        cache.rekey_trcd(10.0f64.to_bits());
        let e1 = cache.class_epoch;
        assert_ne!(e0, e1, "first sub-guard write re-keys");
        cache.rekey_trcd(10.0f64.to_bits());
        assert_eq!(cache.class_epoch, e1, "same value again: no re-key");
        cache.rekey_trcd(9.5f64.to_bits());
        assert_ne!(cache.class_epoch, e1, "different value re-keys");
        assert_eq!(cache.stats.flushes, 2);
    }

    #[test]
    fn temperature_invalidation_bumps_resolve_epoch_only() {
        let mut cache = SenseCache::default();
        let class = cache.class_epoch;
        let resolve = cache.resolve_epoch;
        cache.invalidate_resolved();
        assert_eq!(cache.class_epoch, class);
        assert_ne!(cache.resolve_epoch, resolve);
        assert_eq!(cache.stats.flushes, 1);
    }

    #[test]
    fn hit_rate_counts_skip_and_hit_over_sensed() {
        let stats = SenseCacheStats {
            classified_words: 3,
            skip_word_reads: 60,
            hit_reads: 30,
            resolve_reads: 10,
            ..SenseCacheStats::default()
        };
        assert!((stats.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(stats.sensed_reads(), 100);
        assert_eq!(SenseCacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn lane_utilization_counts_full_groups() {
        let stats = SenseCacheStats {
            bulk_cells: 10,
            bulk_lane_cells: 8,
            ..SenseCacheStats::default()
        };
        assert!((stats.lane_utilization() - 0.8).abs() < 1e-12);
        assert_eq!(SenseCacheStats::default().lane_utilization(), 0.0);
    }

    #[test]
    fn resolve_words_scatters_lane_and_remainder_cells() {
        use crate::probit::fast_phi;

        // Two words, 4 + 3 cells: the first word rides a full vector
        // group, the second spans the group boundary and the scalar
        // remainder. Every scattered p must equal the scalar kernel.
        let mut cache = SenseCache::default();
        let args: Vec<f64> = vec![-2.0, -1.0, 0.0, 0.5, 1.0, 2.0, 3.0];
        let mk_word = |cells: usize| WordState {
            classified: true,
            active: (0..cells)
                .map(|bit| FastCell {
                    bit,
                    base: 0.0,
                    lat: CellLatents::default(),
                })
                .collect(),
            ps: vec![-1.0; cells],
            hot_bits: (0..cells as u8).collect(),
            ..WordState::default()
        };
        let a = WordAddr::new(0, 0, 0);
        let b = WordAddr::new(0, 0, 1);
        cache.words.insert(a, mk_word(4));
        cache.words.insert(b, mk_word(3));

        let mut arena = ResolveArena::default();
        arena.args.extend_from_slice(&args);
        arena.spans.push((a, [1, 2, 3], 4));
        arena.spans.push((b, [4, 5, 6], 3));
        cache.resolve_words(&mut arena);

        let wa = &cache.words[&a];
        let wb = &cache.words[&b];
        for (i, &p) in wa.ps.iter().chain(wb.ps.iter()).enumerate() {
            assert_eq!(p.to_bits(), fast_phi(args[i]).to_bits(), "cell {i}");
        }
        for w in [wa, wb] {
            assert!(w.resolved && w.prefetched);
        }
        assert_eq!(wa.ctx, [1, 2, 3]);
        assert_eq!(wb.ctx, [4, 5, 6]);
        assert_eq!(cache.stats.bulk_cells, 7);
        assert_eq!(cache.stats.bulk_lane_cells, 4);
    }
}
