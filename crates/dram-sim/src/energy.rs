//! DRAMPower-style energy model.
//!
//! The paper estimates D-RaNGe's energy cost by feeding Ramulator command
//! traces to DRAMPower and subtracting idle energy (Section 7.3,
//! "Low Energy Consumption"). This module reproduces that abstraction:
//! a per-command incremental energy plus background power integrated over
//! the trace duration, with an `idle` baseline to subtract.

use serde::{Deserialize, Serialize};

use crate::commands::CommandKind;
use crate::trace::CommandTrace;

/// Per-command and background energy constants.
///
/// Defaults are LPDDR4-class figures derived from typical IDD current
/// specifications at 1.1 V; absolute values matter less than their ratios
/// since Table 2 compares mechanisms on the same model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Incremental energy of one ACT command (pJ).
    pub act_pj: f64,
    /// Incremental energy of one PRE command (pJ).
    pub pre_pj: f64,
    /// Incremental energy of one RD burst (pJ).
    pub rd_pj: f64,
    /// Incremental energy of one WR burst (pJ).
    pub wr_pj: f64,
    /// Incremental energy of one REF command (pJ).
    pub ref_pj: f64,
    /// Background (standby) power while the trace runs (mW).
    pub background_mw: f64,
}

impl EnergyModel {
    /// LPDDR4-class constants.
    pub fn lpddr4() -> Self {
        EnergyModel {
            act_pj: 2_200.0,
            pre_pj: 1_300.0,
            rd_pj: 2_600.0,
            wr_pj: 2_900.0,
            ref_pj: 28_000.0,
            background_mw: 55.0,
        }
    }

    /// DDR3-class constants (higher supply voltage, higher currents).
    pub fn ddr3() -> Self {
        EnergyModel {
            act_pj: 5_500.0,
            pre_pj: 3_600.0,
            rd_pj: 5_200.0,
            wr_pj: 5_800.0,
            ref_pj: 70_000.0,
            background_mw: 130.0,
        }
    }

    /// Incremental energy of one command of the given kind, pJ.
    pub fn command_pj(&self, kind: CommandKind) -> f64 {
        match kind {
            CommandKind::Act => self.act_pj,
            CommandKind::Pre => self.pre_pj,
            CommandKind::Rd => self.rd_pj,
            CommandKind::Wr => self.wr_pj,
            CommandKind::Ref => self.ref_pj,
        }
    }

    /// Total energy of a command trace in picojoules: the sum of
    /// per-command increments plus background power over the trace span.
    pub fn trace_energy_pj(&self, trace: &CommandTrace) -> f64 {
        let incremental: f64 = trace
            .commands()
            .iter()
            .map(|c| self.command_pj(c.kind))
            .sum();
        // background: mW * ps = 1e-3 J/s * 1e-12 s = 1e-15 J = 1e-3 pJ
        let background = self.background_mw * trace.end_ps() as f64 * 1e-3;
        incremental + background
    }

    /// Energy of an *idle* interval of the same duration (background
    /// power only), pJ — the quantity the paper subtracts.
    pub fn idle_energy_pj(&self, duration_ps: u64) -> f64 {
        self.background_mw * duration_ps as f64 * 1e-3
    }

    /// Net energy attributable to the activity in the trace:
    /// `trace_energy - idle_energy(trace duration)`, pJ.
    pub fn net_energy_pj(&self, trace: &CommandTrace) -> f64 {
        self.trace_energy_pj(trace) - self.idle_energy_pj(trace.end_ps())
    }

    /// Net energy per produced random bit, in nJ/bit (the paper's 4.4
    /// nJ/bit metric for D-RaNGe).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn nj_per_bit(&self, trace: &CommandTrace, bits: u64) -> f64 {
        assert!(bits > 0, "cannot amortize energy over zero bits");
        self.net_energy_pj(trace) / bits as f64 * 1e-3
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::lpddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::Command;

    fn simple_trace() -> CommandTrace {
        [
            Command::act(0, 0, 0),
            Command::rd(0, 0, 0, 10_000),
            Command::wr(0, 0, 0, 30_000),
            Command::pre(0, 50_000),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn trace_energy_sums_commands_and_background() {
        let m = EnergyModel::lpddr4();
        let t = simple_trace();
        let want_inc = m.act_pj + m.rd_pj + m.wr_pj + m.pre_pj;
        let want_bg = m.background_mw * 50_000.0 * 1e-3;
        assert!((m.trace_energy_pj(&t) - want_inc - want_bg).abs() < 1e-9);
    }

    #[test]
    fn net_energy_subtracts_idle() {
        let m = EnergyModel::lpddr4();
        let t = simple_trace();
        let want_inc = m.act_pj + m.rd_pj + m.wr_pj + m.pre_pj;
        assert!((m.net_energy_pj(&t) - want_inc).abs() < 1e-9);
    }

    #[test]
    fn nj_per_bit_scales_inversely_with_bits() {
        let m = EnergyModel::lpddr4();
        let t = simple_trace();
        let e1 = m.nj_per_bit(&t, 1);
        let e4 = m.nj_per_bit(&t, 4);
        assert!((e1 / e4 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero bits")]
    fn zero_bits_panics() {
        let m = EnergyModel::lpddr4();
        let _ = m.nj_per_bit(&simple_trace(), 0);
    }

    #[test]
    fn ddr3_costs_more_than_lpddr4() {
        let l = EnergyModel::lpddr4();
        let d = EnergyModel::ddr3();
        assert!(d.act_pj > l.act_pj);
        assert!(d.background_mw > l.background_mw);
    }

    #[test]
    fn empty_trace_has_zero_energy() {
        let m = EnergyModel::lpddr4();
        assert_eq!(m.trace_energy_pj(&CommandTrace::new()), 0.0);
        assert_eq!(m.net_energy_pj(&CommandTrace::new()), 0.0);
    }
}
