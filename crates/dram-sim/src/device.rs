//! The DRAM device model: data storage, bank protocol state, and the
//! activation-failure read path.
//!
//! ## Failure model
//!
//! A READ issued `tRCD` after ACT samples the bitline before it is fully
//! amplified. The normalized bitline overdrive above the read threshold
//! ("margin") of a cell is
//!
//! ```text
//! margin = settle(tRCD) · strength(bitline) · (1 − α·rowdist) − θ
//!        + charge_pref ± coupling(neighbors) + tempco·(45 − T)·sens + ε
//! ```
//!
//! and the sensed value is wrong with probability `Φ(−margin / σ_noise)`.
//! A failed sense is *restored into the cell* (the sense amplifier writes
//! back what it sensed), which is why the paper's Algorithm 2 rewrites
//! the original data after every sample.
//!
//! Failures only affect the first word read after an activation
//! (Section 5.1: "activation failures occur only within the first cache
//! line accessed immediately following an activation"); subsequent reads
//! of the open row are clean.

use crate::data_pattern::DataPattern;
use crate::entropy::{NoiseSource, OsNoise, SeededNoise};
use crate::error::{DramError, Result};
use crate::faults::{AgedCell, FaultStats, StuckWord};
use crate::geometry::{CellAddr, Geometry, WordAddr};
use crate::manufacturer::{Manufacturer, PhysicsProfile};
use crate::math::phi;
use crate::probit::fast_phi;
use crate::sense_cache::{FastCell, ResolveArena, SenseCache, SenseCacheStats, WordState};
use crate::temperature::Celsius;
use crate::timing::{DramStandard, TimingParams};
use crate::variation::{cell_latents, CellLatents, VariationMap};

/// Margin above which the slow (per-cell, noise-sampled) path is skipped
/// entirely: at 0.16 V over threshold with σ = 0.02 V, the failure
/// probability is below 10⁻¹⁵ even with extreme per-cell offsets.
const SLOW_PATH_CUTOFF_V: f64 = 0.16;

/// Configuration for building a [`DramDevice`].
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    manufacturer: Manufacturer,
    geometry: Option<Geometry>,
    profile: Option<PhysicsProfile>,
    standard: DramStandard,
    seed: u64,
    noise_seed: Option<u64>,
    temperature: Celsius,
}

impl DeviceConfig {
    /// Starts a configuration for a device from the given manufacturer
    /// with default geometry, physics, LPDDR4 timing, and OS-seeded
    /// noise.
    pub fn new(manufacturer: Manufacturer) -> Self {
        DeviceConfig {
            manufacturer,
            geometry: None,
            profile: None,
            standard: DramStandard::Lpddr4,
            seed: 0,
            noise_seed: None,
            temperature: Celsius::DEFAULT,
        }
    }

    /// Sets the manufacturing seed (process variation). Devices with
    /// different seeds are "different chips" from the same manufacturer.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses a deterministic noise source (reproducible experiments).
    /// Without this, noise is OS-seeded — the true-randomness stand-in.
    pub fn with_noise_seed(mut self, seed: u64) -> Self {
        self.noise_seed = Some(seed);
        self
    }

    /// Overrides the geometry. `subarray_rows` is still taken from the
    /// manufacturer profile unless a custom profile is also supplied.
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = Some(geometry);
        self
    }

    /// Overrides the physics profile (calibration experiments).
    pub fn with_profile(mut self, profile: PhysicsProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Selects the DRAM standard (timing preset).
    pub fn with_standard(mut self, standard: DramStandard) -> Self {
        self.standard = standard;
        self
    }

    /// Sets the initial device temperature.
    pub fn with_temperature(mut self, t: Celsius) -> Self {
        self.temperature = t;
        self
    }

    /// The manufacturer this configuration targets.
    pub fn manufacturer(&self) -> Manufacturer {
        self.manufacturer
    }

    /// The configured manufacturing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// When a deterministic noise seed is configured, offsets it so that
    /// derived devices (e.g. one per channel) get independent but still
    /// reproducible noise streams. A no-op for OS-seeded noise.
    pub fn with_noise_seed_offset(mut self, offset: u64) -> Self {
        if let Some(s) = self.noise_seed {
            self.noise_seed = Some(s.wrapping_add(offset.wrapping_mul(0x9E37_79B9)));
        }
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<usize>,
    /// True if no column of the open row has been accessed yet — the
    /// window in which activation failures can occur.
    fresh: bool,
}

/// A simulated DRAM device (one rank's worth of banks).
pub struct DramDevice {
    manufacturer: Manufacturer,
    geometry: Geometry,
    profile: PhysicsProfile,
    standard: DramStandard,
    timing: TimingParams,
    seed: u64,
    temperature: Celsius,
    variation: VariationMap,
    /// Stored data: `data[bank][row * cols + col]`, low `word_bits` used.
    data: Vec<Vec<u64>>,
    banks: Vec<BankState>,
    noise: Box<dyn NoiseSource>,
    /// Memoized per-word bit classification for the sensing hot path.
    cache: SenseCache,
    /// Reusable gather/scatter buffers for [`DramDevice::resolve_run`].
    arena: ResolveArena,
    /// Whether READs sense through the cache (default) or the original
    /// per-cell slow path (the equivalence oracle).
    sense_fast: bool,
    /// Per-(bank, row) activation counts: `act_counts[bank * rows + row]`.
    /// Feeds activation-driven aging wear.
    act_counts: Vec<u64>,
    /// Injected environmental faults (aging, stuck-at, voltage noise).
    faults: FaultState,
}

/// The device's injected-fault state. Margin-affecting members
/// (`margin_bias_v`, aging wear) may only change through methods that
/// bump the sensing cache's resolve epoch.
#[derive(Debug, Default)]
struct FaultState {
    /// Global transient margin bias in volts (voltage-noise bursts).
    margin_bias_v: f64,
    /// Activation-driven aging records, per cell.
    aging: std::collections::HashMap<CellAddr, AgedCell>,
    /// Stuck-at masks, per word.
    stuck: std::collections::HashMap<WordAddr, StuckWord>,
    /// Cumulative injection counters.
    stats: FaultStats,
}

impl std::fmt::Debug for DramDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramDevice")
            .field("manufacturer", &self.manufacturer)
            .field("geometry", &self.geometry)
            .field("standard", &self.standard)
            .field("temperature", &self.temperature)
            .finish_non_exhaustive()
    }
}

impl DramDevice {
    /// Builds the device: materializes process variation and zero-fills
    /// the array.
    ///
    /// # Panics
    ///
    /// Panics if the (possibly overridden) geometry is invalid; use
    /// [`Geometry::validate`] beforehand when geometry comes from
    /// untrusted input.
    pub fn build(config: DeviceConfig) -> Self {
        let profile = config
            .profile
            .unwrap_or_else(|| config.manufacturer.profile());
        let mut geometry = config
            .geometry
            .unwrap_or_else(|| Geometry::lpddr4_compact(profile.subarray_rows));
        if config.geometry.is_none() {
            geometry.subarray_rows = profile.subarray_rows.min(geometry.rows);
        }
        // xtask:allow(no-panic) -- documented constructor contract; validate geometry beforehand for untrusted input
        geometry.validate().expect("invalid device geometry");
        let variation = VariationMap::build(config.seed, geometry, &profile);
        let data = vec![vec![0u64; geometry.rows * geometry.cols]; geometry.banks];
        let banks = vec![
            BankState {
                open_row: None,
                fresh: false
            };
            geometry.banks
        ];
        let noise: Box<dyn NoiseSource> = match config.noise_seed {
            Some(s) => Box::new(SeededNoise::new(s)),
            None => Box::new(OsNoise::new()),
        };
        DramDevice {
            manufacturer: config.manufacturer,
            geometry,
            profile,
            standard: config.standard,
            timing: TimingParams::for_standard(config.standard),
            seed: config.seed,
            temperature: config.temperature,
            variation,
            data,
            banks,
            noise,
            cache: SenseCache::default(),
            arena: ResolveArena::default(),
            sense_fast: true,
            act_counts: vec![0u64; geometry.banks * geometry.rows],
            faults: FaultState::default(),
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The physics profile in effect.
    pub fn profile(&self) -> &PhysicsProfile {
        &self.profile
    }

    /// The manufacturer of this device.
    pub fn manufacturer(&self) -> Manufacturer {
        self.manufacturer
    }

    /// The DRAM standard (timing preset family).
    pub fn standard(&self) -> DramStandard {
        self.standard
    }

    /// Datasheet timing parameters for this device.
    pub fn timing(&self) -> TimingParams {
        self.timing
    }

    /// The manufacturing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current device temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Sets the device temperature (the thermal chamber knob).
    ///
    /// Invalidates every memoized sensing probability: the margin's
    /// temperature term changes, the bit classification (which is
    /// temperature-independent) does not.
    pub fn set_temperature(&mut self, t: Celsius) {
        if t.degrees().to_bits() != self.temperature.degrees().to_bits() {
            self.cache.invalidate_resolved();
        }
        self.temperature = t;
    }

    /// Selects the sensing implementation: `true` (default) senses
    /// through the sense-cache fast path, `false` runs the original
    /// per-cell slow path.
    ///
    /// Both consume the device's noise stream identically, so the
    /// toggle exists for equivalence testing and benchmarking, not
    /// correctness.
    pub fn set_sense_fast_path(&mut self, fast: bool) {
        self.sense_fast = fast;
    }

    /// Whether the sensing fast path is active.
    pub fn sense_fast_path(&self) -> bool {
        self.sense_fast
    }

    /// Snapshot of the sensing-cache effectiveness counters.
    pub fn sense_cache_stats(&self) -> SenseCacheStats {
        self.cache.stats
    }

    /// Timing-register hook: tells the device a new tRCD is in effect.
    ///
    /// Values at or above the fail guard never reach the sensing path
    /// and are ignored; a *changed* sub-guard value re-keys the
    /// classification epoch. Each READ also carries its tRCD and the
    /// cache double-checks it per word, so this hook is the explicit
    /// invalidation path, not the only one.
    pub fn notify_timing_change(&mut self, trcd_ns: f64) {
        if trcd_ns < self.profile.fail_guard_ns {
            self.cache.rekey_trcd(trcd_ns.to_bits());
        }
    }

    /// The process-variation map (analysis/tests).
    pub fn variation(&self) -> &VariationMap {
        &self.variation
    }

    fn check_bank(&self, bank: usize) -> Result<()> {
        if bank >= self.geometry.banks {
            return Err(DramError::BankOutOfRange {
                bank,
                banks: self.geometry.banks,
            });
        }
        Ok(())
    }

    fn check_addr(&self, bank: usize, row: usize, col: usize) -> Result<()> {
        self.check_bank(bank)?;
        if row >= self.geometry.rows {
            return Err(DramError::RowOutOfRange {
                row,
                rows: self.geometry.rows,
            });
        }
        if col >= self.geometry.cols {
            return Err(DramError::ColOutOfRange {
                col,
                cols: self.geometry.cols,
            });
        }
        Ok(())
    }

    #[inline]
    fn word_mask(&self) -> u64 {
        if self.geometry.word_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.geometry.word_bits) - 1
        }
    }

    // ------------------------------------------------------------------
    // Direct (out-of-band) data access, used for test setup and analysis.
    // ------------------------------------------------------------------

    /// Reads a stored word directly, bypassing the command protocol.
    ///
    /// # Errors
    ///
    /// Returns an addressing error if the address is outside geometry.
    pub fn peek(&self, addr: WordAddr) -> Result<u64> {
        self.check_addr(addr.bank, addr.row, addr.col)?;
        Ok(self.data[addr.bank][addr.row * self.geometry.cols + addr.col])
    }

    /// Writes a stored word directly, bypassing the command protocol.
    ///
    /// # Errors
    ///
    /// Returns an addressing error if the address is outside geometry.
    pub fn poke(&mut self, addr: WordAddr, value: u64) -> Result<()> {
        self.check_addr(addr.bank, addr.row, addr.col)?;
        let mask = self.word_mask();
        self.data[addr.bank][addr.row * self.geometry.cols + addr.col] = value & mask;
        Ok(())
    }

    /// The stored bit of one cell.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside geometry.
    pub fn stored_bit(&self, cell: CellAddr) -> bool {
        // xtask:allow(no-panic) -- documented # Panics contract of this accessor
        let w = self.peek(cell.word()).expect("cell address out of range");
        (w >> cell.bit) & 1 == 1
    }

    /// Fills one row with a data pattern (direct access).
    pub fn fill_row(&mut self, bank: usize, row: usize, pattern: DataPattern) {
        for col in 0..self.geometry.cols {
            let w = pattern.word(row, col, self.geometry.word_bits);
            self.poke(WordAddr::new(bank, row, col), w)
                // xtask:allow(no-panic) -- col iterates the device's own geometry, always in range
                .expect("fill_row in range");
        }
    }

    /// Fills an entire bank with a data pattern (direct access).
    pub fn fill_bank(&mut self, bank: usize, pattern: DataPattern) {
        for row in 0..self.geometry.rows {
            self.fill_row(bank, row, pattern);
        }
    }

    /// Fills the whole device with a data pattern (direct access).
    pub fn fill_device(&mut self, pattern: DataPattern) {
        for bank in 0..self.geometry.banks {
            self.fill_bank(bank, pattern);
        }
    }

    // ------------------------------------------------------------------
    // Command protocol.
    // ------------------------------------------------------------------

    /// ACT: opens a row in a bank and arms the activation-failure window.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankAlreadyOpen`] if the bank has an open row
    /// and addressing errors for out-of-range banks/rows.
    pub fn activate(&mut self, bank: usize, row: usize) -> Result<()> {
        self.check_addr(bank, row, 0)?;
        let state = &mut self.banks[bank];
        if let Some(open) = state.open_row {
            return Err(DramError::BankAlreadyOpen {
                bank,
                open_row: open,
            });
        }
        state.open_row = Some(row);
        state.fresh = true;
        self.act_counts[bank * self.geometry.rows + row] += 1;
        Ok(())
    }

    /// PRE: closes the open row of a bank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotOpen`] if no row is open.
    pub fn precharge(&mut self, bank: usize) -> Result<()> {
        self.check_bank(bank)?;
        let state = &mut self.banks[bank];
        if state.open_row.is_none() {
            return Err(DramError::BankNotOpen { bank });
        }
        state.open_row = None;
        state.fresh = false;
        Ok(())
    }

    /// The row currently open in a bank, if any.
    pub fn open_row(&self, bank: usize) -> Option<usize> {
        self.banks.get(bank).and_then(|s| s.open_row)
    }

    /// READ: senses one word of the open row, applying the
    /// activation-failure path when this is the first access after ACT
    /// and `trcd_ns` is below the amplification the cell needs.
    ///
    /// A failed sense corrupts the stored cell (restore writes back the
    /// sensed value).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotOpen`] / [`DramError::WrongOpenRow`]
    /// for protocol violations and addressing errors for bad indices.
    pub fn read(&mut self, bank: usize, row: usize, col: usize, trcd_ns: f64) -> Result<u64> {
        self.check_addr(bank, row, col)?;
        let state = self.banks[bank];
        let open = state.open_row.ok_or(DramError::BankNotOpen { bank })?;
        if open != row {
            return Err(DramError::WrongOpenRow {
                bank,
                requested: row,
                open_row: open,
            });
        }
        let idx = row * self.geometry.cols + col;
        let stored = self.data[bank][idx];
        if !state.fresh {
            return Ok(self.apply_stuck(bank, row, col, stored));
        }
        self.banks[bank].fresh = false;
        if trcd_ns >= self.profile.fail_guard_ns {
            // Within the guard-banded operating region: datasheet-
            // compliant (and near-compliant) reads are always correct.
            // The paper observes failures only for tRCD in 6-13 ns.
            return Ok(self.apply_stuck(bank, row, col, stored));
        }
        let sensed = if self.sense_fast {
            self.sense_word_fast(bank, row, col, stored, trcd_ns)
        } else {
            self.sense_word(bank, row, col, stored, trcd_ns)
        };
        // Stuck bits override whatever the sense amplifiers latched;
        // applied after sensing so the noise-stream consumption (and
        // the fast/slow path equivalence) is unperturbed. The override
        // flows into the restore below, corrupting the stored word just
        // like a natural activation failure.
        let sensed = self.apply_stuck(bank, row, col, sensed);
        if sensed != stored {
            // Restoration writes the (wrong) sensed value back. The
            // sense cache needs no explicit hook: every non-skip sense
            // re-reads the live coupling context, and when Algorithm 2
            // rewrites the original data the context round-trips, so
            // the memoized probabilities become valid again for free.
            self.data[bank][idx] = sensed;
        }
        Ok(sensed)
    }

    /// WRITE: stores one word into the open row.
    ///
    /// # Errors
    ///
    /// Same protocol and addressing errors as [`DramDevice::read`].
    pub fn write(&mut self, bank: usize, row: usize, col: usize, value: u64) -> Result<()> {
        self.check_addr(bank, row, col)?;
        let state = self.banks[bank];
        let open = state.open_row.ok_or(DramError::BankNotOpen { bank })?;
        if open != row {
            return Err(DramError::WrongOpenRow {
                bank,
                requested: row,
                open_row: open,
            });
        }
        // A column write drives the sense amplifiers directly; the
        // failure window is gone afterwards.
        self.banks[bank].fresh = false;
        let mask = self.word_mask();
        self.data[bank][idx_of(&self.geometry, row, col)] = value & mask;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Failure physics.
    // ------------------------------------------------------------------

    /// Senses a word with the failure model applied.
    fn sense_word(
        &mut self,
        bank: usize,
        row: usize,
        col: usize,
        stored: u64,
        trcd_ns: f64,
    ) -> u64 {
        let g = self.profile.settle(trcd_ns);
        let sub = self.geometry.subarray_of(row);
        let d = self.geometry.row_in_subarray(row) as f64 / self.geometry.subarray_rows as f64;
        let row_factor = 1.0 - self.profile.row_alpha * d;
        let mut sensed = stored;
        for bit in 0..self.geometry.word_bits {
            let bl = self.geometry.bitline_of(col, bit);
            let s = self.variation.strength(bank, sub, bl);
            let base = g * s * row_factor - self.profile.theta_v;
            if base > SLOW_PATH_CUTOFF_V {
                continue;
            }
            let cell = CellAddr::new(bank, row, col, bit);
            let margin = self.cell_margin(cell, base, stored);
            let p_fail = phi(-margin * self.profile.inv_sigma);
            if self.noise.bernoulli(p_fail) {
                sensed ^= 1u64 << bit;
            }
        }
        sensed
    }

    /// Senses a word through the sense cache: one map lookup plus a
    /// skip-mask test in the common case, memoized latents and
    /// probabilities otherwise. Draws from the noise stream in the same
    /// order (and, up to the [`crate::probit`] error bound, with the
    /// same probabilities) as [`DramDevice::sense_word`].
    fn sense_word_fast(
        &mut self,
        bank: usize,
        row: usize,
        col: usize,
        stored: u64,
        trcd_ns: f64,
    ) -> u64 {
        // Steady-state attempt on disjoint field borrows (cache, noise,
        // and data never alias): a classified, resolved, context-clean
        // word needs no classification and no Φ work, so the whole read
        // is a table or map probe, a context compare, and the noise
        // draws — with no cache detach. Falls through to the detached
        // slow path on any staleness.
        {
            let cache = &mut self.cache;
            let noise = &mut self.noise;
            // Dense hot-run table first: Algorithm 2 READs the run in
            // order, so the cursor compare answers the common case
            // without touching the word map's scattered buckets and
            // heap buffers. Every staleness check the map path does is
            // replayed against the table's snapshots.
            if cache.hot_valid
                && cache.hot_class_epoch == cache.class_epoch
                && cache.hot_trcd_bits == trcd_ns.to_bits()
                && !cache.hot.is_empty()
            {
                let addr = WordAddr::new(bank, row, col);
                let n = cache.hot.len();
                let cur = cache.hot_cursor;
                let found = if cache.hot[cur].addr == addr {
                    Some(cur)
                } else {
                    cache.hot.iter().position(|h| h.addr == addr)
                };
                if let Some(k) = found {
                    cache.hot_cursor = if k + 1 == n { 0 } else { k + 1 };
                    let hw = &mut cache.hot[k];
                    if hw.usable {
                        if hw.len == 0 {
                            cache.stats.skip_word_reads += 1;
                            return stored;
                        }
                        let ctx = ctx_of_parts(&self.data, &self.geometry, bank, row, col, stored);
                        if hw.resolve_epoch == cache.resolve_epoch && hw.ctx == ctx {
                            if hw.prefetched {
                                hw.prefetched = false;
                                cache.stats.resolve_reads += 1;
                            } else {
                                cache.stats.hit_reads += 1;
                            }
                            let off = hw.off as usize;
                            let len = hw.len as usize;
                            let mut sensed = stored;
                            let mut mask = noise.bernoulli_run(&cache.hot_ps[off..off + len]);
                            while mask != 0 {
                                let j = mask.trailing_zeros() as usize;
                                sensed ^= 1u64 << cache.hot_bit_pool[off + j];
                                mask &= mask - 1;
                            }
                            return sensed;
                        }
                    }
                }
            }
            if let Some(state) = cache.words.get_mut(&WordAddr::new(bank, row, col)) {
                if state.classified
                    && state.class_epoch == cache.class_epoch
                    && state.trcd_bits == trcd_ns.to_bits()
                {
                    if state.active.is_empty() {
                        cache.stats.skip_word_reads += 1;
                        return stored;
                    }
                    let ctx = ctx_of_parts(&self.data, &self.geometry, bank, row, col, stored);
                    if state.resolved
                        && state.resolve_epoch == cache.resolve_epoch
                        && state.ctx == ctx
                    {
                        if state.prefetched {
                            // First consumption of a bulk-prefetched
                            // resolution books as a resolve — see
                            // `sense_word_cached`.
                            state.prefetched = false;
                            cache.stats.resolve_reads += 1;
                        } else {
                            cache.stats.hit_reads += 1;
                        }
                        let mut sensed = stored;
                        let mut mask = noise.bernoulli_run(&state.ps);
                        while mask != 0 {
                            let k = mask.trailing_zeros() as usize;
                            sensed ^= 1u64 << state.hot_bits[k];
                            mask &= mask - 1;
                        }
                        return sensed;
                    }
                }
            }
        }
        // Detach the cache so its word states can be borrowed mutably
        // alongside the device's data/profile/variation/noise fields.
        let mut cache = std::mem::take(&mut self.cache);
        let sensed = self.sense_word_cached(&mut cache, bank, row, col, stored, trcd_ns);
        self.cache = cache;
        sensed
    }

    /// Ensures a word's classification matches the current tRCD and
    /// classification epoch, recomputing it when stale. Replicates
    /// [`DramDevice::sense_word`]'s per-bit prefix so `base` is
    /// computed by the identical expression tree. Returns whether a
    /// (re)classification ran (the caller books the stats).
    #[allow(clippy::too_many_arguments)]
    fn ensure_classified(
        &self,
        state: &mut WordState,
        bank: usize,
        row: usize,
        col: usize,
        trcd_bits: u64,
        trcd_ns: f64,
        class_epoch: u32,
    ) -> bool {
        if state.classified && state.class_epoch == class_epoch && state.trcd_bits == trcd_bits {
            return false;
        }
        let g = self.profile.settle(trcd_ns);
        let sub = self.geometry.subarray_of(row);
        let d = self.geometry.row_in_subarray(row) as f64 / self.geometry.subarray_rows as f64;
        let row_factor = 1.0 - self.profile.row_alpha * d;
        state.skip_mask = 0;
        state.active.clear();
        state.hot_bits.clear();
        for bit in 0..self.geometry.word_bits {
            let bl = self.geometry.bitline_of(col, bit);
            let s = self.variation.strength(bank, sub, bl);
            let base = g * s * row_factor - self.profile.theta_v;
            if base > SLOW_PATH_CUTOFF_V {
                state.skip_mask |= 1u64 << bit;
            } else {
                let cell = CellAddr::new(bank, row, col, bit);
                let lat = cell_latents(self.seed, &self.profile, cell);
                state.active.push(FastCell { bit, base, lat });
                state.hot_bits.push(bit as u8);
            }
        }
        state.ps.clear();
        state.ps.resize(state.active.len(), 0.0);
        state.classified = true;
        state.class_epoch = class_epoch;
        state.trcd_bits = trcd_bits;
        state.resolved = false;
        state.prefetched = false;
        true
    }

    /// Coupling-context snapshot of a word: the margins of its cells
    /// depend only on the stored word itself and its column neighbors
    /// (bitline b±1 leaves the word only at bits 0 and word_bits−1).
    /// Missing neighbors use a constant sentinel.
    fn ctx_of(&self, bank: usize, row: usize, col: usize, stored: u64) -> [u64; 3] {
        ctx_of_parts(&self.data, &self.geometry, bank, row, col, stored)
    }

    fn sense_word_cached(
        &mut self,
        cache: &mut SenseCache,
        bank: usize,
        row: usize,
        col: usize,
        stored: u64,
        trcd_ns: f64,
    ) -> u64 {
        let trcd_bits = trcd_ns.to_bits();
        let state = cache
            .words
            .entry(WordAddr::new(bank, row, col))
            .or_default();
        if self.ensure_classified(state, bank, row, col, trcd_bits, trcd_ns, cache.class_epoch) {
            cache.stats.classified_words += 1;
        }
        if state.active.is_empty() {
            // Every bit always-correct at this tRCD: the whole-word
            // common case is this one mask-backed early return.
            cache.stats.skip_word_reads += 1;
            return stored;
        }
        let ctx = self.ctx_of(bank, row, col, stored);
        if !state.resolved || state.resolve_epoch != cache.resolve_epoch || state.ctx != ctx {
            for k in 0..state.active.len() {
                let fc = &state.active[k];
                let cell = CellAddr::new(bank, row, col, fc.bit);
                let margin = self.cell_margin_with(cell, fc.base, stored, &fc.lat);
                state.ps[k] = fast_phi(-margin * self.profile.inv_sigma);
            }
            state.resolved = true;
            state.resolve_epoch = cache.resolve_epoch;
            state.ctx = ctx;
            state.prefetched = false;
            cache.stats.resolve_reads += 1;
            // The map resolution just diverged from any hot-table
            // snapshot of this word; retire that entry so the table
            // never serves (or books) a superseded resolution.
            if cache.hot_valid {
                let addr = WordAddr::new(bank, row, col);
                if let Some(h) = cache.hot.iter_mut().find(|h| h.addr == addr) {
                    h.usable = false;
                }
            }
        } else if state.prefetched {
            // First consumption of a bulk-prefetched resolution: the Φ
            // work ran in resolve_run instead of here, so this READ
            // books as a resolve — counter-for-counter identical to
            // the non-prefetching fast path.
            state.prefetched = false;
            cache.stats.resolve_reads += 1;
        } else {
            cache.stats.hit_reads += 1;
        }
        // One virtual dispatch for the whole word's draws; the mask
        // comes back in `ps` order, i.e. ascending bit order — the
        // exact sequence the per-cell loop used to draw.
        let mut sensed = stored;
        let mut mask = self.noise.bernoulli_run(&state.ps);
        while mask != 0 {
            let k = mask.trailing_zeros() as usize;
            sensed ^= 1u64 << state.hot_bits[k];
            mask &= mask - 1;
        }
        sensed
    }

    /// Bulk-prefetches the stochastic-cell resolutions for a run of
    /// words — the Algorithm 2 plan of the next sampling pass — by
    /// gathering every stale word's cell margins into a
    /// structure-of-arrays arena and evaluating Φ with the four-lane
    /// probit kernel ([`crate::probit::fast_phi4`]).
    ///
    /// Purely an acceleration hint: READs re-validate the epochs and
    /// the coupling context regardless, the lane kernel is
    /// bit-identical to the scalar one, and the prefetch consumes no
    /// noise (Φ is deterministic), so the output stream and the cache
    /// counters are exactly those of the non-prefetching fast path.
    /// No-op when the fast path is disabled, when `trcd_ns` is inside
    /// the guard band (such READs never sense), and when the previous
    /// run covered the same words under the same tRCD and epochs (the
    /// steady-state hot streak). Out-of-range addresses are skipped.
    pub fn resolve_run(&mut self, words: &[WordAddr], trcd_ns: f64) {
        if !self.sense_fast || trcd_ns >= self.profile.fail_guard_ns {
            return;
        }
        let trcd_bits = trcd_ns.to_bits();
        let mut cache = std::mem::take(&mut self.cache);
        if cache.run_valid
            && cache.run_trcd_bits == trcd_bits
            && cache.run_class_epoch == cache.class_epoch
            && cache.run_resolve_epoch == cache.resolve_epoch
            && cache.run_words == words
        {
            self.cache = cache;
            return;
        }
        let mut arena = std::mem::take(&mut self.arena);
        arena.clear();
        for &addr in words {
            let (bank, row, col) = (addr.bank, addr.row, addr.col);
            if self.check_addr(bank, row, col).is_err() {
                continue;
            }
            let state = cache.words.entry(addr).or_default();
            if self.ensure_classified(state, bank, row, col, trcd_bits, trcd_ns, cache.class_epoch)
            {
                cache.stats.classified_words += 1;
            }
            if state.active.is_empty() {
                continue;
            }
            let stored = self.data[bank][idx_of(&self.geometry, row, col)];
            let ctx = self.ctx_of(bank, row, col, stored);
            if state.resolved && state.resolve_epoch == cache.resolve_epoch && state.ctx == ctx {
                continue;
            }
            arena.spans.push((addr, ctx, state.active.len() as u32));
            for fc in &state.active {
                let cell = CellAddr::new(bank, row, col, fc.bit);
                let margin = self.cell_margin_with(cell, fc.base, stored, &fc.lat);
                arena.args.push(-margin * self.profile.inv_sigma);
            }
        }
        cache.resolve_words(&mut arena);
        cache.build_hot_table(words, trcd_bits);
        cache.run_words.clear();
        cache.run_words.extend_from_slice(words);
        cache.run_trcd_bits = trcd_bits;
        cache.run_class_epoch = cache.class_epoch;
        cache.run_resolve_epoch = cache.resolve_epoch;
        cache.run_valid = true;
        self.arena = arena;
        self.cache = cache;
    }

    /// Adds the per-cell margin terms to a precomputed `base` margin.
    ///
    /// `row_word` is the stored word containing the cell (used for
    /// neighbor coupling within the word); neighbors in adjacent words
    /// are fetched from the array.
    fn cell_margin(&self, cell: CellAddr, base: f64, row_word: u64) -> f64 {
        let lat = cell_latents(self.seed, &self.profile, cell);
        self.cell_margin_with(cell, base, row_word, &lat)
    }

    /// [`DramDevice::cell_margin`] with the latents supplied by the
    /// caller — the single margin expression both sensing paths share,
    /// so cached and freshly-derived latents produce bit-identical
    /// margins.
    fn cell_margin_with(&self, cell: CellAddr, base: f64, row_word: u64, lat: &CellLatents) -> f64 {
        let anti = cell.row % 2 == 1;
        let stored = (row_word >> cell.bit) & 1 == 1;
        let my_charge = stored ^ anti;

        // Charge-orientation preference: sensing a high-charge cell is
        // easier or harder depending on the (per-cell, per-manufacturer)
        // preference sign.
        let charge_term = if my_charge {
            -lat.charge_pref_v
        } else {
            lat.charge_pref_v
        };

        // Adjacent-bitline coupling: neighbors whose stored charge
        // differs swing the opposite way and steal margin.
        let mut couple = 0.0;
        if let Some(left) = self.neighbor_charge(cell, -1, row_word) {
            if left != my_charge {
                couple += lat.coupl_left_v;
            }
        }
        if let Some(right) = self.neighbor_charge(cell, 1, row_word) {
            if right != my_charge {
                couple += lat.coupl_right_v;
            }
        }

        let temp_term = -(self.temperature.degrees() - Celsius::DEFAULT.degrees())
            * self.profile.tempco_v_per_c
            * lat.temp_sens;

        // Injected environmental faults: a global transient voltage
        // bias plus per-cell aging wear. Both live in this shared
        // expression so the slow path, the cached fast path, and the
        // analytic failure_probability stay bit-identical, and both
        // may only change through resolve-epoch-bumping methods.
        let fault_term = self.faults.margin_bias_v - self.wear_of(cell);

        let margin = base + charge_term - couple + temp_term + lat.eps_v + fault_term;
        // Metastable dead zone: margins within ±dz resolve 50/50 on
        // thermal noise alone (true metastability); outside it, the
        // residual margin beyond the dead zone drives the probit.
        let dz = self.profile.metastable_deadzone_v;
        if margin.abs() < dz {
            0.0
        } else {
            margin - dz * margin.signum()
        }
    }

    /// The physical charge (true/anti adjusted) of the cell `delta`
    /// bitlines away in the same row, if it exists.
    fn neighbor_charge(&self, cell: CellAddr, delta: isize, row_word: u64) -> Option<bool> {
        let bl = self.geometry.bitline_of(cell.col, cell.bit) as isize + delta;
        if bl < 0 || bl as usize >= self.geometry.bitlines() {
            return None;
        }
        let bl = bl as usize;
        let (ncol, nbit) = (bl / self.geometry.word_bits, bl % self.geometry.word_bits);
        let word = if ncol == cell.col {
            row_word
        } else {
            self.data[cell.bank][idx_of(&self.geometry, cell.row, ncol)]
        };
        let stored = (word >> nbit) & 1 == 1;
        let anti = cell.row % 2 == 1;
        Some(stored ^ anti)
    }

    /// Analytic activation-failure probability of a cell for a given
    /// `tRCD`, using the *currently stored* data as the pattern context.
    ///
    /// This is the model's ground truth F_prob; characterization code
    /// estimates the same quantity empirically by repeated sampling.
    ///
    /// # Panics
    ///
    /// Panics if the cell address is outside geometry.
    pub fn failure_probability(&self, cell: CellAddr, trcd_ns: f64) -> f64 {
        self.check_addr(cell.bank, cell.row, cell.col)
            // xtask:allow(no-panic) -- documented # Panics contract of this accessor
            .expect("cell in range");
        if trcd_ns >= self.profile.fail_guard_ns {
            return 0.0;
        }
        let g = self.profile.settle(trcd_ns);
        let sub = self.geometry.subarray_of(cell.row);
        let d = self.geometry.row_in_subarray(cell.row) as f64 / self.geometry.subarray_rows as f64;
        let bl = self.geometry.bitline_of(cell.col, cell.bit);
        let s = self.variation.strength(cell.bank, sub, bl);
        let base = g * s * (1.0 - self.profile.row_alpha * d) - self.profile.theta_v;
        if base > SLOW_PATH_CUTOFF_V {
            return 0.0;
        }
        let row_word = self.data[cell.bank][idx_of(&self.geometry, cell.row, cell.col)];
        let margin = self.cell_margin(cell, base, row_word);
        phi(-margin * self.profile.inv_sigma)
    }

    /// Whether the cell sits on a weak bitline (analysis helper).
    pub fn on_weak_bitline(&self, cell: CellAddr) -> bool {
        let sub = self.geometry.subarray_of(cell.row);
        let bl = self.geometry.bitline_of(cell.col, cell.bit);
        self.variation.is_weak(cell.bank, sub, bl)
    }

    // ------------------------------------------------------------------
    // Environmental fault injection (see crate::faults).
    // ------------------------------------------------------------------

    /// Applies any stuck-at overrides to a freshly read word.
    #[inline]
    fn apply_stuck(&mut self, bank: usize, row: usize, col: usize, sensed: u64) -> u64 {
        if self.faults.stuck.is_empty() {
            return sensed;
        }
        match self.faults.stuck.get(&WordAddr::new(bank, row, col)) {
            Some(s) => {
                let out = (sensed & !s.mask) | (s.value & s.mask);
                if out != sensed {
                    self.faults.stats.stuck_read_overrides += 1;
                }
                out
            }
            None => sensed,
        }
    }

    /// Aging wear currently in effect for a cell, volts.
    #[inline]
    fn wear_of(&self, cell: CellAddr) -> f64 {
        if self.faults.aging.is_empty() {
            return 0.0;
        }
        self.faults.aging.get(&cell).map_or(0.0, |a| a.wear_v)
    }

    /// Cumulative injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats
    }

    /// The transient margin bias currently injected, volts.
    pub fn margin_bias_v(&self) -> f64 {
        self.faults.margin_bias_v
    }

    /// Injects a global transient margin bias (a voltage-noise burst);
    /// negative values steal margin and raise failure probabilities.
    /// `0.0` ends the burst. Any actual change invalidates every
    /// memoized sensing probability.
    pub fn set_margin_bias(&mut self, bias_v: f64) {
        if bias_v.to_bits() == self.faults.margin_bias_v.to_bits() {
            return;
        }
        self.faults.margin_bias_v = bias_v;
        self.faults.stats.noise_bias_events += 1;
        self.faults.stats.margin_flushes += 1;
        self.cache.invalidate_resolved();
    }

    /// Schedule-driven temperature change: behaves exactly like
    /// [`DramDevice::set_temperature`] but is counted as an injected
    /// environmental fault.
    pub fn inject_temperature(&mut self, t: Celsius) {
        self.faults.stats.temperature_events += 1;
        self.set_temperature(t);
    }

    /// Registers (or re-parameterizes) activation-driven aging on a
    /// cell: its margin is attenuated by `wear_v_per_kiloact` volts per
    /// 1000 activations of the cell's row. The wear in effect is
    /// recomputed only by [`DramDevice::refresh_aging`] — schedule-step
    /// granularity — so memoized sensing probabilities stay valid
    /// between steps. Registration itself refreshes the cell's wear.
    ///
    /// # Errors
    ///
    /// Returns an addressing error if the cell is outside geometry.
    pub fn age_cell(&mut self, cell: CellAddr, wear_v_per_kiloact: f64) -> Result<()> {
        self.check_addr(cell.bank, cell.row, cell.col)?;
        let acts = self.act_counts[cell.bank * self.geometry.rows + cell.row];
        let wear_v = wear_v_per_kiloact * (acts as f64 / 1000.0);
        let prev = self.faults.aging.insert(
            cell,
            AgedCell {
                wear_v_per_kiloact,
                wear_v,
            },
        );
        match prev {
            None => {
                self.faults.stats.cells_aged += 1;
                if wear_v != 0.0 {
                    self.faults.stats.margin_flushes += 1;
                    self.cache.invalidate_resolved();
                }
            }
            Some(old) => {
                if old.wear_v.to_bits() != wear_v.to_bits() {
                    self.faults.stats.margin_flushes += 1;
                    self.cache.invalidate_resolved();
                }
            }
        }
        Ok(())
    }

    /// Recomputes every aged cell's wear from the current activation
    /// counts, invalidating memoized probabilities if any changed.
    /// Returns the number of cells whose wear moved. Called by
    /// [`crate::EnvSchedule::step`]; this is the *only* place wear
    /// changes, which keeps margins constant between schedule steps.
    pub fn refresh_aging(&mut self) -> usize {
        let mut changed = 0;
        for (cell, aged) in self.faults.aging.iter_mut() {
            let acts = self.act_counts[cell.bank * self.geometry.rows + cell.row];
            let wear_v = aged.wear_v_per_kiloact * (acts as f64 / 1000.0);
            if wear_v.to_bits() != aged.wear_v.to_bits() {
                aged.wear_v = wear_v;
                changed += 1;
            }
        }
        if changed > 0 {
            self.faults.stats.margin_flushes += 1;
            self.cache.invalidate_resolved();
        }
        changed
    }

    /// Aging wear currently in effect for a cell, volts (0 for cells
    /// never registered).
    pub fn cell_wear_v(&self, cell: CellAddr) -> f64 {
        self.wear_of(cell)
    }

    /// Number of cells registered for aging.
    pub fn aged_cell_count(&self) -> usize {
        self.faults.aging.len()
    }

    /// Forces a cell to read as `value` regardless of what the sense
    /// amplifiers latch. Applied after sensing, so noise-stream
    /// consumption is unperturbed; on the reduced-latency path the
    /// override flows into the restore and corrupts the stored word
    /// like a natural failure.
    ///
    /// # Errors
    ///
    /// Returns an addressing error if the cell is outside geometry.
    pub fn set_stuck(&mut self, cell: CellAddr, value: bool) -> Result<()> {
        self.check_addr(cell.bank, cell.row, cell.col)?;
        let entry = self.faults.stuck.entry(cell.word()).or_default();
        let bit = 1u64 << cell.bit;
        if entry.mask & bit == 0 {
            self.faults.stats.cells_stuck += 1;
        }
        entry.mask |= bit;
        if value {
            entry.value |= bit;
        } else {
            entry.value &= !bit;
        }
        Ok(())
    }

    /// Releases a stuck cell (no-op if it was not stuck). Corruption
    /// the stuck reads left in the array persists, as it would on real
    /// hardware.
    ///
    /// # Errors
    ///
    /// Returns an addressing error if the cell is outside geometry.
    pub fn clear_stuck(&mut self, cell: CellAddr) -> Result<()> {
        self.check_addr(cell.bank, cell.row, cell.col)?;
        if let Some(entry) = self.faults.stuck.get_mut(&cell.word()) {
            let bit = 1u64 << cell.bit;
            entry.mask &= !bit;
            entry.value &= !bit;
            if entry.mask == 0 {
                self.faults.stuck.remove(&cell.word());
            }
        }
        Ok(())
    }

    /// Number of cells currently forced stuck-at.
    pub fn stuck_cell_count(&self) -> usize {
        self.faults
            .stuck
            .values()
            .map(|s| s.mask.count_ones() as usize)
            .sum()
    }

    /// How many times a (bank, row) pair has been activated — the
    /// quantity aging wear accrues over.
    pub fn activation_count(&self, bank: usize, row: usize) -> u64 {
        self.act_counts
            .get(bank * self.geometry.rows + row)
            .copied()
            .unwrap_or(0)
    }

    /// Replaces the noise source (tests).
    pub fn set_noise(&mut self, noise: Box<dyn NoiseSource>) {
        self.noise = noise;
    }

    /// A uniform draw from this device's noise source. Used by the
    /// retention and startup models, which share the device's single
    /// physical-entropy stream.
    pub fn noise_uniform(&mut self) -> f64 {
        self.noise.uniform()
    }

    /// A Bernoulli draw from this device's noise source.
    pub fn noise_bernoulli(&mut self, p: f64) -> bool {
        self.noise.bernoulli(p)
    }
}

#[inline]
fn idx_of(geometry: &Geometry, row: usize, col: usize) -> usize {
    row * geometry.cols + col
}

/// [`DramDevice::ctx_of`] as a free function, so the steady-state read
/// path can compute the context while the sense cache is mutably
/// borrowed (disjoint field borrows instead of a cache detach).
#[inline]
fn ctx_of_parts(
    data: &[Vec<u64>],
    geometry: &Geometry,
    bank: usize,
    row: usize,
    col: usize,
    stored: u64,
) -> [u64; 3] {
    let left = if col > 0 {
        data[bank][idx_of(geometry, row, col - 1)]
    } else {
        0
    };
    let right = if col + 1 < geometry.cols {
        data[bank][idx_of(geometry, row, col + 1)]
    } else {
        0
    };
    [left, stored, right]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DramDevice {
        DramDevice::build(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(11)
                .with_noise_seed(22),
        )
    }

    #[test]
    fn protocol_enforced() {
        let mut d = device();
        assert_eq!(
            d.read(0, 0, 0, 18.0),
            Err(DramError::BankNotOpen { bank: 0 })
        );
        d.activate(0, 5).unwrap();
        assert_eq!(
            d.activate(0, 6),
            Err(DramError::BankAlreadyOpen {
                bank: 0,
                open_row: 5
            })
        );
        assert_eq!(
            d.read(0, 6, 0, 18.0),
            Err(DramError::WrongOpenRow {
                bank: 0,
                requested: 6,
                open_row: 5
            })
        );
        d.read(0, 5, 0, 18.0).unwrap();
        d.precharge(0).unwrap();
        assert_eq!(d.precharge(0), Err(DramError::BankNotOpen { bank: 0 }));
    }

    #[test]
    fn addressing_errors() {
        let mut d = device();
        let g = d.geometry();
        assert!(matches!(
            d.activate(g.banks, 0),
            Err(DramError::BankOutOfRange { .. })
        ));
        assert!(matches!(
            d.activate(0, g.rows),
            Err(DramError::RowOutOfRange { .. })
        ));
        d.activate(0, 0).unwrap();
        assert!(matches!(
            d.read(0, 0, g.cols, 18.0),
            Err(DramError::ColOutOfRange { .. })
        ));
    }

    #[test]
    fn spec_trcd_reads_are_correct() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Checkered);
        let trcd = d.timing().trcd_ns();
        for row in (0..1024).step_by(97) {
            for col in 0..16 {
                d.activate(0, row).unwrap();
                let got = d.read(0, row, col, trcd).unwrap();
                d.precharge(0).unwrap();
                let want = DataPattern::Checkered.word(row, col, 64);
                assert_eq!(got, want, "row {row} col {col}");
            }
        }
    }

    #[test]
    fn reduced_trcd_induces_failures_somewhere() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Solid0);
        let mut failures = 0usize;
        for row in 0..1024 {
            for col in 0..16 {
                d.activate(0, row).unwrap();
                let got = d.read(0, row, col, 10.0).unwrap();
                d.precharge(0).unwrap();
                if got != 0 {
                    failures += got.count_ones() as usize;
                    // restore
                    d.activate(0, row).unwrap();
                    d.read(0, row, col, 18.0).unwrap(); // consume fresh window
                    d.write(0, row, col, 0).unwrap();
                    d.precharge(0).unwrap();
                }
            }
        }
        assert!(
            failures > 0,
            "a full-bank scan at 10 ns must induce failures"
        );
    }

    #[test]
    fn only_first_read_after_act_fails() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Solid0);
        // Find a cell with high failure probability.
        let mut target = None;
        'outer: for row in 0..1024 {
            for col in 0..16 {
                for bit in 0..64 {
                    let c = CellAddr::new(0, row, col, bit);
                    if d.failure_probability(c, 10.0) > 0.99 {
                        target = Some(c);
                        break 'outer;
                    }
                }
            }
        }
        let c = target.expect("the model must contain near-deterministic failures");
        d.activate(0, c.row).unwrap();
        let first = d.read(0, c.row, c.col, 10.0).unwrap();
        assert_ne!((first >> c.bit) & 1, 0, "first read fails");
        // Restore and re-read without a fresh activation: clean.
        d.write(0, c.row, c.col, 0).unwrap();
        let second = d.read(0, c.row, c.col, 10.0).unwrap();
        assert_eq!(second, 0, "subsequent reads of an open row are clean");
        d.precharge(0).unwrap();
    }

    #[test]
    fn failure_corrupts_stored_data_until_rewritten() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Solid0);
        let mut corrupted = None;
        for row in 0..1024 {
            d.activate(0, row).unwrap();
            for col in 0..16 {
                let got = d.read(0, row, col, 10.0).unwrap();
                if got != 0 {
                    corrupted = Some((row, col, got));
                    break;
                }
            }
            d.precharge(0).unwrap();
            if corrupted.is_some() {
                break;
            }
        }
        let (row, col, got) = corrupted.expect("some failure occurs");
        // The stored array now holds the corrupted value.
        assert_eq!(d.peek(WordAddr::new(0, row, col)).unwrap(), got);
    }

    #[test]
    fn failure_probability_zero_on_strong_bitlines_at_10ns() {
        let d = device();
        let mut checked = 0;
        for row in [0usize, 100, 700] {
            for col in 0..16 {
                for bit in 0..64 {
                    let c = CellAddr::new(1, row, col, bit);
                    if !d.on_weak_bitline(c) {
                        assert_eq!(d.failure_probability(c, 10.0), 0.0);
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 1000);
    }

    #[test]
    fn fprob_increases_as_trcd_decreases() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Solid0);
        // Average analytic F_prob over the weak cells of subarray 0.
        let weak = d.variation().weak_bitlines(0, 0);
        assert!(!weak.is_empty());
        let avg = |d: &DramDevice, trcd: f64| {
            let mut sum = 0.0;
            let mut n = 0;
            for &bl in &weak {
                for row in (0..512).step_by(31) {
                    let c = CellAddr::new(0, row, bl / 64, bl % 64);
                    sum += d.failure_probability(c, trcd);
                    n += 1;
                }
            }
            sum / n as f64
        };
        let f13 = avg(&d, 13.0);
        let f10 = avg(&d, 10.0);
        let f8 = avg(&d, 8.0);
        assert!(f13 <= f10 && f10 <= f8, "f13={f13} f10={f10} f8={f8}");
        assert!(f10 > f13, "strictly more failures at 10 ns than 13 ns");
    }

    #[test]
    fn fprob_increases_with_row_distance_on_weak_bitline() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Solid0);
        let weak = d.variation().weak_bitlines(0, 0);
        let &bl = weak.first().expect("weak bitline exists");
        // Compare averages over low vs high rows of the subarray to
        // smooth per-cell offsets.
        let avg_rows = |d: &DramDevice, lo: usize, hi: usize| {
            let mut s = 0.0;
            for row in lo..hi {
                s += d.failure_probability(CellAddr::new(0, row, bl / 64, bl % 64), 10.5);
            }
            s / (hi - lo) as f64
        };
        let near = avg_rows(&d, 0, 64);
        let far = avg_rows(&d, 448, 512);
        assert!(
            far >= near,
            "far rows fail at least as much: near={near} far={far}"
        );
    }

    #[test]
    fn temperature_raises_average_fprob() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Solid0);
        let cells: Vec<CellAddr> = (0..512)
            .flat_map(|row| {
                d.variation()
                    .weak_bitlines(0, 0)
                    .into_iter()
                    .map(move |bl| CellAddr::new(0, row, bl / 64, bl % 64))
            })
            .collect();
        let avg = |d: &DramDevice| {
            cells
                .iter()
                .map(|&c| d.failure_probability(c, 10.0))
                .sum::<f64>()
                / cells.len() as f64
        };
        let at55 = {
            let mut d2 = device();
            d2.fill_bank(0, DataPattern::Solid0);
            d2.set_temperature(Celsius(55.0));
            avg(&d2)
        };
        d.set_temperature(Celsius(70.0));
        let at70 = avg(&d);
        assert!(at70 > at55, "70C avg {at70} must exceed 55C avg {at55}");
    }

    #[test]
    fn pattern_changes_fprob_for_some_cell() {
        let mut d = device();
        let weak = d.variation().weak_bitlines(0, 0);
        let &bl = weak.first().unwrap();
        let cell = CellAddr::new(0, 300, bl / 64, bl % 64);
        d.fill_bank(0, DataPattern::Solid0);
        let f_solid0 = d.failure_probability(cell, 10.0);
        d.fill_bank(0, DataPattern::Checkered);
        let f_check = d.failure_probability(cell, 10.0);
        // The margins differ (coupling + charge terms) so probabilities
        // differ unless both saturate.
        if f_solid0 > 1e-9 && f_solid0 < 1.0 - 1e-9 {
            assert_ne!(f_solid0, f_check);
        }
    }

    #[test]
    fn poke_peek_round_trip_and_masking() {
        let mut d = DramDevice::build(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(1)
                .with_noise_seed(2)
                .with_geometry(Geometry {
                    banks: 1,
                    rows: 4,
                    cols: 2,
                    word_bits: 8,
                    subarray_rows: 4,
                }),
        );
        let a = WordAddr::new(0, 1, 1);
        d.poke(a, 0xFFFF).unwrap();
        assert_eq!(d.peek(a).unwrap(), 0xFF, "write masked to word_bits");
    }

    #[test]
    fn write_requires_open_row() {
        let mut d = device();
        assert!(d.write(0, 0, 0, 1).is_err());
        d.activate(0, 0).unwrap();
        d.write(0, 0, 0, 0b1010).unwrap();
        assert_eq!(d.peek(WordAddr::new(0, 0, 0)).unwrap(), 0b1010);
        d.precharge(0).unwrap();
    }

    #[test]
    fn deterministic_with_seeded_noise() {
        let run = || {
            let mut d = device();
            d.fill_bank(0, DataPattern::Solid0);
            let mut out = Vec::new();
            for row in 0..256 {
                d.activate(0, row).unwrap();
                out.push(d.read(0, row, 3, 10.0).unwrap());
                d.precharge(0).unwrap();
            }
            out
        };
        assert_eq!(run(), run());
    }

    /// Two devices built identically except for the sensing path: the
    /// fast path must emit the oracle's exact output stream for the
    /// same noise seed.
    fn oracle_pair(man: Manufacturer, seed: u64, noise: u64) -> (DramDevice, DramDevice) {
        let build = |fast: bool| {
            let mut d = DramDevice::build(
                DeviceConfig::new(man)
                    .with_seed(seed)
                    .with_noise_seed(noise),
            );
            d.set_sense_fast_path(fast);
            d.fill_bank(0, DataPattern::Checkered);
            d
        };
        (build(true), build(false))
    }

    fn scan_both(
        fast: &mut DramDevice,
        slow: &mut DramDevice,
        rows: std::ops::Range<usize>,
        trcd: f64,
        tag: &str,
    ) {
        let cols = fast.geometry().cols;
        for row in rows {
            for col in 0..cols {
                fast.activate(0, row).unwrap();
                slow.activate(0, row).unwrap();
                let a = fast.read(0, row, col, trcd).unwrap();
                let b = slow.read(0, row, col, trcd).unwrap();
                fast.precharge(0).unwrap();
                slow.precharge(0).unwrap();
                assert_eq!(a, b, "{tag}: row {row} col {col} trcd {trcd}");
            }
        }
    }

    fn assert_same_stored_and_fprob(fast: &DramDevice, slow: &DramDevice, tag: &str) {
        let g = fast.geometry();
        for row in (0..g.rows).step_by(17) {
            for col in 0..g.cols {
                let a = WordAddr::new(0, row, col);
                assert_eq!(fast.peek(a), slow.peek(a), "{tag}: stored {row}/{col}");
                for bit in (0..g.word_bits).step_by(13) {
                    let c = CellAddr::new(0, row, col, bit);
                    assert_eq!(
                        fast.failure_probability(c, 10.0),
                        slow.failure_probability(c, 10.0),
                        "{tag}: fprob {row}/{col}/{bit}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_path_equivalent_across_manufacturers_temps_and_trcd() {
        for man in [Manufacturer::A, Manufacturer::B, Manufacturer::C] {
            let (mut fast, mut slow) = oracle_pair(man, 31, 77);
            // Interleave temperature and tRCD changes so the scan also
            // exercises re-keying and re-resolution mid-stream.
            let schedule = [
                (45.0, 10.0),
                (45.0, 9.0),
                (70.0, 10.0),
                (25.0, 11.0),
                (45.0, 13.0),
            ];
            for (step, (temp, trcd)) in schedule.iter().enumerate() {
                fast.set_temperature(Celsius(*temp));
                slow.set_temperature(Celsius(*temp));
                let lo = step * 24;
                scan_both(
                    &mut fast,
                    &mut slow,
                    lo..lo + 96,
                    *trcd,
                    &format!("{man:?}"),
                );
            }
            assert_same_stored_and_fprob(&fast, &slow, &format!("{man:?}"));
            let stats = fast.sense_cache_stats();
            assert!(stats.sensed_reads() > 0, "fast path actually sensed");
            assert!(stats.skip_word_reads > 0, "skip mask engaged");
        }
    }

    #[test]
    fn fast_path_equivalent_under_random_op_interleaving() {
        let (mut fast, mut slow) = oracle_pair(Manufacturer::A, 7, 9);
        let g = fast.geometry();
        let mut k = 0xD15E_A5ED_u64;
        let mut rng = move || {
            k = crate::math::splitmix64(k);
            k
        };
        for step in 0..4000 {
            match rng() % 10 {
                // Data writes (protocol-bypassing poke) invalidate the
                // written word and its column neighbors.
                0 | 1 => {
                    let a = WordAddr::new(0, rng() as usize % 64, rng() as usize % g.cols);
                    let v = rng();
                    fast.poke(a, v).unwrap();
                    slow.poke(a, v).unwrap();
                }
                // Temperature changes invalidate all resolutions.
                2 => {
                    let t = Celsius(25.0 + (rng() % 5) as f64 * 10.0);
                    fast.set_temperature(t);
                    slow.set_temperature(t);
                }
                // Timing-register hook (mirrors what memctrl drives).
                3 => {
                    let trcd = [9.5, 10.0, 18.0][rng() as usize % 3];
                    fast.notify_timing_change(trcd);
                    slow.notify_timing_change(trcd);
                }
                // Reduced-latency reads, including repeats of the same
                // words so memoized probabilities actually get reused.
                _ => {
                    let row = rng() as usize % 64;
                    let col = rng() as usize % g.cols;
                    let trcd = [9.5, 10.0][rng() as usize % 2];
                    fast.activate(0, row).unwrap();
                    slow.activate(0, row).unwrap();
                    let a = fast.read(0, row, col, trcd).unwrap();
                    let b = slow.read(0, row, col, trcd).unwrap();
                    fast.precharge(0).unwrap();
                    slow.precharge(0).unwrap();
                    assert_eq!(a, b, "step {step}: row {row} col {col} trcd {trcd}");
                }
            }
        }
        assert_same_stored_and_fprob(&fast, &slow, "interleaved");
        assert!(
            fast.sense_cache_stats().hit_reads > 0,
            "memoization engaged"
        );
    }

    #[test]
    fn cache_stats_track_classification_and_invalidation() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Solid0);
        let read_once = |d: &mut DramDevice, row: usize, col: usize, trcd: f64| {
            d.activate(0, row).unwrap();
            let w = d.read(0, row, col, trcd).unwrap();
            d.precharge(0).unwrap();
            w
        };
        // Pick a word whose first read stays clean (so repeat reads keep
        // an unchanged coupling context) but which has stochastic bits.
        // Each probe uses a fresh device, so the chosen word behaves
        // identically on `d`, whose noise stream is at the same point.
        let (row, col) = (0..64)
            .flat_map(|r| (0..16).map(move |c| (r, c)))
            .find(|&(r, c)| {
                let mut probe = device();
                probe.activate(0, r).unwrap();
                let w = probe.read(0, r, c, 10.0).unwrap();
                probe.precharge(0).unwrap();
                w == 0 && probe.sense_cache_stats().resolve_reads > 0
            })
            .expect("a clean stochastic word exists");

        read_once(&mut d, row, col, 10.0);
        let s1 = d.sense_cache_stats();
        assert_eq!(s1.classified_words, 1);
        assert_eq!(s1.resolve_reads, 1);

        read_once(&mut d, row, col, 10.0);
        let s2 = d.sense_cache_stats();
        assert_eq!(s2.classified_words, 1, "same tRCD: no reclassification");
        assert_eq!(s2.hit_reads, 1, "unchanged context reuses p");

        // A write to the column neighbor forces re-resolution but not
        // reclassification.
        let ncol = if col == 0 { 1 } else { col - 1 };
        d.poke(WordAddr::new(0, row, ncol), 1).unwrap();
        read_once(&mut d, row, col, 10.0);
        let s3 = d.sense_cache_stats();
        assert_eq!(s3.classified_words, 1);
        assert_eq!(s3.resolve_reads, 2, "neighbor write re-resolves");

        // Temperature change: re-resolution, no reclassification.
        d.set_temperature(Celsius(55.0));
        read_once(&mut d, row, col, 10.0);
        let s4 = d.sense_cache_stats();
        assert_eq!(s4.classified_words, 1);
        assert_eq!(s4.resolve_reads, 3, "temperature change re-resolves");

        // tRCD change: full reclassification.
        read_once(&mut d, row, col, 9.5);
        let s5 = d.sense_cache_stats();
        assert_eq!(s5.classified_words, 2, "new tRCD reclassifies");
    }

    /// One Algorithm-2-style pass over `words`: read each at reduced
    /// tRCD, restore corrupted words, return the sensed values.
    fn pass_over(d: &mut DramDevice, words: &[WordAddr], trcd: f64) -> Vec<u64> {
        let mut out = Vec::new();
        for &w in words {
            d.activate(w.bank, w.row).unwrap();
            let got = d.read(w.bank, w.row, w.col, trcd).unwrap();
            if got != 0 {
                d.write(w.bank, w.row, w.col, 0).unwrap();
            }
            d.precharge(w.bank).unwrap();
            out.push(got);
        }
        out
    }

    #[test]
    fn resolve_run_prefetch_is_invisible() {
        // Prefetching via resolve_run must leave the sensed bit stream
        // AND the cache counters exactly as the plain fast path: the
        // lane kernel is bit-identical to the scalar and the first READ
        // of a prefetched word books the resolve.
        let mut pre = device();
        let mut plain = device();
        let g = pre.geometry();
        let words: Vec<WordAddr> = (0..12)
            .map(|i| WordAddr::new(i % g.banks.min(4), (i * 7) % 64, i % g.cols))
            .collect();
        for step in 0..40 {
            let trcd = [9.5, 10.0][step % 2];
            pre.resolve_run(&words, trcd);
            // Hot-streak probe: a second identical call must be free.
            pre.resolve_run(&words, trcd);
            let a = pass_over(&mut pre, &words, trcd);
            let b = pass_over(&mut plain, &words, trcd);
            assert_eq!(a, b, "step {step} trcd {trcd}");
            if step == 20 {
                // Mid-stream temperature change: re-resolution epoch.
                pre.set_temperature(Celsius(60.0));
                plain.set_temperature(Celsius(60.0));
            }
        }
        let sa = pre.sense_cache_stats();
        let sb = plain.sense_cache_stats();
        assert_eq!(sa.classified_words, sb.classified_words);
        assert_eq!(sa.resolve_reads, sb.resolve_reads, "prefetch booking");
        assert_eq!(sa.hit_reads, sb.hit_reads);
        assert_eq!(sa.skip_word_reads, sb.skip_word_reads);
        assert!(sa.bulk_cells > 0, "lane kernel actually ran");
        assert_eq!(sb.bulk_cells, 0);
    }

    #[test]
    fn resolve_run_hot_streak_and_guards() {
        let mut d = device();
        let words: Vec<WordAddr> = (0..8).map(|i| WordAddr::new(0, i * 3, i % 4)).collect();
        // Guard band: no work at nominal tRCD.
        d.resolve_run(&words, 18.0);
        assert_eq!(d.sense_cache_stats().bulk_cells, 0);
        d.resolve_run(&words, 10.0);
        let first = d.sense_cache_stats().bulk_cells;
        assert!(first > 0);
        // Identical repeat run: the stamp short-circuits the whole scan.
        d.resolve_run(&words, 10.0);
        assert_eq!(d.sense_cache_stats().bulk_cells, first, "hot streak skip");
        // Different tRCD breaks the streak and reclassifies.
        d.resolve_run(&words, 9.5);
        assert!(d.sense_cache_stats().bulk_cells > first);
        // Out-of-range addresses are skipped, not fatal.
        let g = d.geometry();
        d.resolve_run(&[WordAddr::new(g.banks, 0, 0)], 10.0);
        // Disabled fast path: complete no-op.
        d.set_sense_fast_path(false);
        let before = d.sense_cache_stats().bulk_cells;
        d.resolve_run(&words, 10.0);
        assert_eq!(d.sense_cache_stats().bulk_cells, before);
    }
}
