//! The entropy source: thermal noise at the sense amplifiers.
//!
//! At sampling time, the *only* nondeterministic input to the device
//! model is a noise draw per marginal cell — the model's analogue of the
//! physical phenomenon (sense-amplifier metastability over thermal noise)
//! that the paper identifies as the entropy source. Production use wants
//! [`OsNoise`]; tests and reproducible experiments want [`SeededNoise`].

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A source of thermal-noise draws.
///
/// Implementors provide uniform draws in `[0, 1)`; the device model
/// compares them against analytically computed failure probabilities
/// (inverse-CDF sampling of the noise-perturbed comparator).
pub trait NoiseSource: Send {
    /// A uniform draw in `[0, 1)`.
    fn uniform(&mut self) -> f64;

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// One Bernoulli draw per probability in `ps` (at most 64),
    /// returned as a mask with bit `k` set when the draw for `ps[k]`
    /// succeeded. Exactly equivalent to calling
    /// [`NoiseSource::bernoulli`] in slice order — same draws from the
    /// underlying stream, same saturation behavior at `p ≤ 0` / `p ≥ 1`
    /// — but a single (mono­morphized, hence inlinable) dispatch for
    /// the whole run instead of one virtual call per cell.
    fn bernoulli_run(&mut self, ps: &[f64]) -> u64 {
        debug_assert!(ps.len() <= 64);
        let mut mask = 0u64;
        for (k, &p) in ps.iter().enumerate() {
            if self.bernoulli(p) {
                mask |= 1u64 << k;
            }
        }
        mask
    }
}

/// OS-seeded noise: the stand-in for true physical nondeterminism.
///
/// Each construction draws a fresh seed from the operating system, so two
/// devices (or two runs) never share a noise stream.
#[derive(Debug)]
pub struct OsNoise {
    rng: StdRng,
}

impl OsNoise {
    /// Creates a noise source seeded from the operating system.
    pub fn new() -> Self {
        OsNoise {
            rng: StdRng::from_entropy(),
        }
    }
}

impl Default for OsNoise {
    fn default() -> Self {
        OsNoise::new()
    }
}

impl NoiseSource for OsNoise {
    fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }
}

/// Deterministic noise for reproducible experiments and tests.
#[derive(Debug, Clone)]
pub struct SeededNoise {
    rng: StdRng,
}

impl SeededNoise {
    /// Creates a noise source with a fixed seed.
    pub fn new(seed: u64) -> Self {
        SeededNoise {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Raw 64-bit output (exposed for tests).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

impl NoiseSource for SeededNoise {
    fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_noise_reproduces() {
        let mut a = SeededNoise::new(7);
        let mut b = SeededNoise::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededNoise::new(1);
        let mut b = SeededNoise::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut n = SeededNoise::new(3);
        for _ in 0..10_000 {
            let u = n.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bernoulli_extremes_are_deterministic() {
        let mut n = SeededNoise::new(4);
        assert!(!n.bernoulli(0.0));
        assert!(n.bernoulli(1.0));
        assert!(!n.bernoulli(-0.5));
        assert!(n.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut n = SeededNoise::new(5);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| n.bernoulli(0.3)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn os_noise_streams_differ() {
        let mut a = OsNoise::new();
        let mut b = OsNoise::new();
        let same = (0..16).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 2);
    }
}
