//! JEDEC-style DRAM timing parameters.
//!
//! All values are stored in **picoseconds** so cycle accounting is exact.
//! The defaults correspond to LPDDR4-3200 (the paper's primary devices)
//! and DDR3-1600 (its SoftMC cross-validation devices).

use serde::{Deserialize, Serialize};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;

/// The DRAM standard being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramStandard {
    /// Low-Power DDR4 (the paper's 282 primary devices).
    Lpddr4,
    /// DDR3 (the paper's 4 SoftMC-driven cross-validation devices).
    Ddr3,
}

impl std::fmt::Display for DramStandard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramStandard::Lpddr4 => write!(f, "LPDDR4"),
            DramStandard::Ddr3 => write!(f, "DDR3"),
        }
    }
}

/// The set of timing parameters the model enforces (all picoseconds,
/// except `tck_ps` which is the command-clock period).
///
/// The memory controller may legally program any values it likes into its
/// timing registers — including a `trcd` below [`TimingParams::trcd_ps`]'s
/// datasheet value, which is exactly the violation D-RaNGe exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimingParams {
    /// Command clock period.
    pub tck_ps: u64,
    /// ACT to internal READ/WRITE delay (row activation latency). The
    /// datasheet value; D-RaNGe programs a smaller value at run time.
    pub trcd_ps: u64,
    /// ACT to PRE minimum (row active time / restoration guarantee).
    pub tras_ps: u64,
    /// PRE to ACT minimum (precharge time).
    pub trp_ps: u64,
    /// ACT to ACT minimum, different banks.
    pub trrd_ps: u64,
    /// Four-activate window: at most 4 ACTs per `tfaw`.
    pub tfaw_ps: u64,
    /// Column-to-column delay (back-to-back READ/WRITE, same bank group).
    pub tccd_ps: u64,
    /// CAS latency: READ command to first data.
    pub tcl_ps: u64,
    /// CAS write latency: WRITE command to first data.
    pub tcwl_ps: u64,
    /// Data burst duration on the bus.
    pub tbl_ps: u64,
    /// READ to PRE minimum.
    pub trtp_ps: u64,
    /// Write recovery: end of write data to PRE.
    pub twr_ps: u64,
    /// Write-to-read turnaround.
    pub twtr_ps: u64,
    /// Refresh cycle time (REF command duration).
    pub trfc_ps: u64,
    /// Average refresh interval.
    pub trefi_ps: u64,
}

impl TimingParams {
    /// LPDDR4-3200 class timings (18 ns tRCD as in the paper, Section 4).
    pub fn lpddr4_3200() -> Self {
        TimingParams {
            tck_ps: 1_250, // 800 MHz command clock (1600 MHz DQS, 3200 MT/s)
            trcd_ps: 18_000,
            tras_ps: 42_000,
            trp_ps: 18_000,
            trrd_ps: 7_500,
            tfaw_ps: 30_000,
            tccd_ps: 5_000,
            tcl_ps: 17_500,
            tcwl_ps: 9_000,
            tbl_ps: 5_000, // 16n prefetch burst at 3200 MT/s
            trtp_ps: 7_500,
            twr_ps: 18_000,
            twtr_ps: 10_000,
            trfc_ps: 180_000,
            trefi_ps: 3_904_000,
        }
    }

    /// DDR3-1600 class timings (13.75 ns tRCD, 11-11-11 grade).
    pub fn ddr3_1600() -> Self {
        TimingParams {
            tck_ps: 1_250, // 800 MHz clock, 1600 MT/s
            trcd_ps: 13_750,
            tras_ps: 35_000,
            trp_ps: 13_750,
            trrd_ps: 6_000,
            tfaw_ps: 30_000,
            tccd_ps: 5_000,
            tcl_ps: 13_750,
            tcwl_ps: 10_000,
            tbl_ps: 5_000, // 8n prefetch at 1600 MT/s
            trtp_ps: 7_500,
            twr_ps: 15_000,
            twtr_ps: 7_500,
            trfc_ps: 260_000,
            trefi_ps: 7_800_000,
        }
    }

    /// The preset for a standard.
    pub fn for_standard(standard: DramStandard) -> Self {
        match standard {
            DramStandard::Lpddr4 => TimingParams::lpddr4_3200(),
            DramStandard::Ddr3 => TimingParams::ddr3_1600(),
        }
    }

    /// The datasheet tRCD in nanoseconds.
    #[inline]
    pub fn trcd_ns(&self) -> f64 {
        self.trcd_ps as f64 / PS_PER_NS as f64
    }

    /// Rounds a picosecond duration up to a whole number of clock cycles,
    /// returning picoseconds again (commands are issued on clock edges).
    #[inline]
    pub fn to_clock_ps(&self, ps: u64) -> u64 {
        ps.div_ceil(self.tck_ps) * self.tck_ps
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::lpddr4_3200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpddr4_matches_paper_trcd() {
        let t = TimingParams::lpddr4_3200();
        assert_eq!(t.trcd_ns(), 18.0);
        assert!(t.tras_ps > t.trcd_ps);
    }

    #[test]
    fn ddr3_preset_differs() {
        assert_ne!(TimingParams::ddr3_1600(), TimingParams::lpddr4_3200());
        assert_eq!(
            TimingParams::for_standard(DramStandard::Ddr3),
            TimingParams::ddr3_1600()
        );
    }

    #[test]
    fn clock_rounding_rounds_up() {
        let t = TimingParams::lpddr4_3200();
        assert_eq!(t.to_clock_ps(1), t.tck_ps);
        assert_eq!(t.to_clock_ps(t.tck_ps), t.tck_ps);
        assert_eq!(t.to_clock_ps(t.tck_ps + 1), 2 * t.tck_ps);
        assert_eq!(t.to_clock_ps(0), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(DramStandard::Lpddr4.to_string(), "LPDDR4");
        assert_eq!(DramStandard::Ddr3.to_string(), "DDR3");
    }
}
