//! Temperature representation.
//!
//! The paper's testing infrastructure holds DRAM at ambient + 15 °C with
//! a PID loop and characterizes 55–70 °C in 5 °C steps (Sections 4, 5.3).

use serde::{Deserialize, Serialize};

/// A temperature in degrees Celsius.
///
/// A newtype so that temperatures cannot be confused with other `f64`
/// quantities (margins, nanoseconds, probabilities) in the physics code.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Celsius(pub f64);

impl Celsius {
    /// The paper's default DRAM test temperature (45 °C ambient chamber;
    /// the characterization sweep runs hotter).
    pub const DEFAULT: Celsius = Celsius(45.0);

    /// The reliable characterization range of the paper's infrastructure.
    pub const SWEEP: [Celsius; 4] = [Celsius(55.0), Celsius(60.0), Celsius(65.0), Celsius(70.0)];

    /// Degrees Celsius as `f64`.
    #[inline]
    pub fn degrees(self) -> f64 {
        self.0
    }

    /// The temperature `delta` degrees warmer.
    #[inline]
    pub fn plus(self, delta: f64) -> Celsius {
        Celsius(self.0 + delta)
    }

    /// `steps + 1` evenly spaced temperatures from `self` to `to`
    /// inclusive — the set-points of a linear chamber ramp. With
    /// `steps == 0` the ramp is just the destination.
    pub fn ramp_to(self, to: Celsius, steps: usize) -> Vec<Celsius> {
        if steps == 0 {
            return vec![to];
        }
        (0..=steps)
            .map(|i| {
                let f = i as f64 / steps as f64;
                Celsius(self.0 + (to.0 - self.0) * f)
            })
            .collect()
    }
}

impl Default for Celsius {
    fn default() -> Self {
        Celsius::DEFAULT
    }
}

impl std::fmt::Display for Celsius {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}\u{00B0}C", self.0)
    }
}

impl From<f64> for Celsius {
    fn from(v: f64) -> Self {
        Celsius(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_45c() {
        assert_eq!(Celsius::default().degrees(), 45.0);
    }

    #[test]
    fn sweep_is_ascending_5c_steps() {
        for w in Celsius::SWEEP.windows(2) {
            assert!((w[1].degrees() - w[0].degrees() - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ramp_to_is_inclusive_and_even() {
        let ramp = Celsius(45.0).ramp_to(Celsius(65.0), 4);
        let degrees: Vec<f64> = ramp.iter().map(|t| t.degrees()).collect();
        assert_eq!(degrees, vec![45.0, 50.0, 55.0, 60.0, 65.0]);
        assert_eq!(Celsius(45.0).ramp_to(Celsius(70.0), 0), vec![Celsius(70.0)]);
    }

    #[test]
    fn plus_and_display() {
        let t = Celsius(55.0).plus(5.0);
        assert_eq!(t.degrees(), 60.0);
        assert!(t.to_string().starts_with("60.0"));
    }
}
