//! Manufacturer profiles.
//!
//! The paper characterizes devices from three anonymized major DRAM
//! manufacturers (A, B, C) and finds the same qualitative behavior with
//! quantitatively different distributions: different subarray sizes
//! (footnote 2), different best data patterns (Section 5.2), and
//! different temperature sensitivities (Section 5.3). A
//! [`PhysicsProfile`] captures those differences as model constants.

use serde::{Deserialize, Serialize};

/// One of the three anonymized DRAM manufacturers of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Manufacturer {
    /// Manufacturer A: 512-row subarrays, tight temperature correlation.
    A,
    /// Manufacturer B: 512-row subarrays, coupling-dominant pattern
    /// sensitivity, wide temperature spread.
    B,
    /// Manufacturer C: 1024-row subarrays, walking-pattern-sensitive.
    C,
}

impl Manufacturer {
    /// All three manufacturers.
    pub const ALL: [Manufacturer; 3] = [Manufacturer::A, Manufacturer::B, Manufacturer::C];

    /// The default physics profile for this manufacturer.
    pub fn profile(self) -> PhysicsProfile {
        match self {
            Manufacturer::A => PhysicsProfile {
                subarray_rows: 512,
                weak_per_1024_bitlines: 7.0,
                adj_coupling_v: 0.006,
                adj_coupling_sd_v: 0.003,
                charge_delta_v: 0.008,
                charge_pref_sd_v: 0.005,
                temp_sens_sd: 0.25,
                ..PhysicsProfile::base()
            },
            Manufacturer::B => PhysicsProfile {
                subarray_rows: 512,
                weak_per_1024_bitlines: 6.0,
                adj_coupling_v: 0.011,
                adj_coupling_sd_v: 0.005,
                charge_delta_v: 0.004,
                charge_pref_sd_v: 0.004,
                temp_sens_sd: 0.70,
                ..PhysicsProfile::base()
            },
            Manufacturer::C => PhysicsProfile {
                subarray_rows: 1024,
                weak_per_1024_bitlines: 9.0,
                adj_coupling_v: 0.009,
                adj_coupling_sd_v: 0.006,
                charge_delta_v: -0.007,
                charge_pref_sd_v: 0.006,
                temp_sens_sd: 0.60,
                ..PhysicsProfile::base()
            },
        }
    }
}

impl std::fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Manufacturer::A => write!(f, "A"),
            Manufacturer::B => write!(f, "B"),
            Manufacturer::C => write!(f, "C"),
        }
    }
}

/// Constants of the activation-failure physics model.
///
/// All voltage-like quantities are in normalized bitline volts where the
/// fully-restored level is ~1.0 and the READ threshold is
/// [`PhysicsProfile::theta_v`]. A cell read at reduced `tRCD` fails with
/// probability `Phi(-(margin) * inv_sigma)` where `margin` is the bitline
/// overdrive above the threshold at READ time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicsProfile {
    /// Rows per subarray (512 or 1024; footnote 2 of the paper).
    pub subarray_rows: usize,
    /// Dead time before sense amplification begins, in ns.
    pub settle_t0_ns: f64,
    /// Exponential settling time constant of amplification, in ns.
    pub settle_tau_ns: f64,
    /// Normalized bitline voltage required for a correct READ.
    pub theta_v: f64,
    /// Reciprocal of the thermal-noise standard deviation (1/V).
    pub inv_sigma: f64,
    /// Metastable dead zone, volts: when the sensing margin is within
    /// ±this value, the sense amplifier enters true metastability and
    /// resolves 50/50 on thermal noise alone, independent of the
    /// residual margin. This is why the paper's RNG cells produce
    /// *unbiased* streams (per-cell megabit streams pass monobit) even
    /// though margins vary cell to cell.
    pub metastable_deadzone_v: f64,
    /// Mean / sd of strong (typical) sense-amp drive strength.
    pub strong_mean: f64,
    /// Standard deviation of strong sense-amp drive strength.
    pub strong_sd: f64,
    /// Mean of weak sense-amp drive strength.
    pub weak_mean: f64,
    /// Standard deviation of weak sense-amp drive strength.
    pub weak_sd: f64,
    /// Lower clamp for weak strength (keeps spec-timing reads correct).
    pub weak_floor: f64,
    /// Expected number of weak bitlines per subarray per 1024 bitlines
    /// (Poisson; the column stripes of Figure 4).
    pub weak_per_1024_bitlines: f64,
    /// Probability that a weak bitline has a weak immediate neighbor
    /// (shared-contact defects cluster; yields the multi-RNG-cell words
    /// of Figure 7).
    pub weak_neighbor1_p: f64,
    /// Probability that a weak bitline has a weak second neighbor.
    pub weak_neighbor2_p: f64,
    /// Expected number of *cluster defect* sites per subarray: small
    /// groups of adjacent marginal bitlines (e.g. a marginal shared
    /// sense-amp stripe contact) whose strength sits right at the
    /// metastable point. These produce the words with 3-4 RNG cells in
    /// the tail of Figure 7.
    pub cluster_sites_per_subarray: f64,
    /// Number of adjacent bitlines per cluster site.
    pub cluster_width: usize,
    /// Mean drive strength of cluster-site bitlines (near-metastable).
    pub cluster_strength_mean: f64,
    /// Strength spread within a cluster site.
    pub cluster_strength_sd: f64,
    /// No activation failures occur at or above this `tRCD` (ns). The
    /// paper empirically finds failures only for tRCD in 6–13 ns
    /// (Section 7.3); datasheet-compliant reads are always correct.
    pub fail_guard_ns: f64,
    /// Fractional drive loss across the subarray row gradient (signal
    /// propagation delay along the bitline; Figure 4's row gradient).
    pub row_alpha: f64,
    /// Per-cell fixed Gaussian margin offset sd (manufacturing variation).
    pub cell_sd_v: f64,
    /// Mean margin penalty per opposite-charge adjacent bitline.
    pub adj_coupling_v: f64,
    /// Per-cell spread of the adjacent-bitline coupling weight.
    pub adj_coupling_sd_v: f64,
    /// Mean margin shift between high and low stored physical charge
    /// (sign differs by manufacturer; drives solid-0 vs solid-1 asymmetry).
    pub charge_delta_v: f64,
    /// Per-cell spread of the charge-preference term.
    pub charge_pref_sd_v: f64,
    /// Mean margin loss per degree Celsius above the 45 °C reference.
    pub tempco_v_per_c: f64,
    /// Per-cell relative spread of temperature sensitivity (a Gaussian
    /// multiplier with mean 1; a small tail of cells is negative, which
    /// is why some points fall below the x = y line in Figure 6).
    pub temp_sens_sd: f64,
    /// ln of the median retention time at 45 °C, in seconds (baselines).
    pub retention_ln_mean_s: f64,
    /// ln-space sd of retention time (baselines).
    pub retention_ln_sd: f64,
    /// Retention time halves every this many °C (baselines).
    pub retention_halving_c: f64,
    /// Fraction of cells whose startup value is random (baselines).
    pub startup_random_frac: f64,
}

impl PhysicsProfile {
    /// The manufacturer-independent base constants.
    pub fn base() -> Self {
        PhysicsProfile {
            subarray_rows: 512,
            settle_t0_ns: 4.0,
            settle_tau_ns: 3.2,
            theta_v: 0.80,
            inv_sigma: 50.0,
            metastable_deadzone_v: 0.005,
            strong_mean: 1.25,
            strong_sd: 0.02,
            weak_mean: 1.02,
            weak_sd: 0.035,
            weak_floor: 0.97,
            weak_per_1024_bitlines: 7.0,
            weak_neighbor1_p: 0.40,
            weak_neighbor2_p: 0.15,
            cluster_sites_per_subarray: 1.0,
            cluster_width: 4,
            cluster_strength_mean: 0.985,
            cluster_strength_sd: 0.006,
            fail_guard_ns: 13.5,
            row_alpha: 0.08,
            cell_sd_v: 0.010,
            adj_coupling_v: 0.008,
            adj_coupling_sd_v: 0.004,
            charge_delta_v: 0.006,
            charge_pref_sd_v: 0.005,
            tempco_v_per_c: 0.0007,
            temp_sens_sd: 0.5,
            retention_ln_mean_s: 4.38, // ln(80 s)
            retention_ln_sd: 1.4,
            retention_halving_c: 10.0,
            startup_random_frac: 0.05,
        }
    }

    /// Fraction of full bitline amplification reached `trcd_ns` after ACT.
    ///
    /// An exponential settling curve: ~0.99 at the 18 ns datasheet value,
    /// dropping steeply below ~13 ns — the paper's empirical
    /// failure-inducing range is 6–13 ns (Section 7.3).
    #[inline]
    pub fn settle(&self, trcd_ns: f64) -> f64 {
        if trcd_ns <= self.settle_t0_ns {
            return 0.0;
        }
        1.0 - (-(trcd_ns - self.settle_t0_ns) / self.settle_tau_ns).exp()
    }
}

impl Default for PhysicsProfile {
    fn default() -> Self {
        PhysicsProfile::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_by_manufacturer() {
        let a = Manufacturer::A.profile();
        let b = Manufacturer::B.profile();
        let c = Manufacturer::C.profile();
        assert_eq!(a.subarray_rows, 512);
        assert_eq!(b.subarray_rows, 512);
        assert_eq!(c.subarray_rows, 1024);
        assert!(b.adj_coupling_v > a.adj_coupling_v);
        assert!(a.temp_sens_sd < b.temp_sens_sd);
    }

    #[test]
    fn settle_is_monotonic_and_saturating() {
        let p = PhysicsProfile::base();
        let mut prev = -1.0;
        for t in [0.0, 4.0, 6.0, 8.0, 10.0, 13.0, 18.0, 30.0] {
            let g = p.settle(t);
            assert!(g >= prev, "settle must be nondecreasing");
            assert!((0.0..=1.0).contains(&g));
            prev = g;
        }
        assert!(
            p.settle(18.0) > 0.97,
            "near-full amplification at spec tRCD"
        );
        assert!(p.settle(10.0) < 0.90, "visibly degraded at 10 ns");
        assert!(p.settle(6.0) < 0.55, "strongly degraded at 6 ns");
    }

    #[test]
    fn all_lists_three() {
        assert_eq!(Manufacturer::ALL.len(), 3);
        let names: Vec<String> = Manufacturer::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }
}
