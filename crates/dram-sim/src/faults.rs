//! Scriptable environmental fault injection.
//!
//! The paper's Section 5.3 measures failure-probability shifts of
//! roughly ±2.5 % per 5 °C, and Section 7.3 prescribes periodic online
//! re-characterization because cells drift in the field. This module
//! provides the *environment* half of that story: a deterministic,
//! seeded [`EnvSchedule`] that replays temperature ramps and step
//! shocks, activation-driven cell aging, stuck-at cell faults, and
//! transient voltage-noise bursts against a [`DramDevice`].
//!
//! ## Determinism and cache correctness
//!
//! Every event is applied through `DramDevice` methods that route
//! margin-affecting changes through the sensing cache's resolve-epoch
//! invalidation, so the memoized fast path stays bit-identical to the
//! slow oracle under any schedule. Aging wear is recomputed from
//! activation counts **only at schedule steps** ([`DramDevice`] method
//! `refresh_aging`), never per activation — between steps the margins
//! are constant and the cache's memoized probabilities remain valid.
//!
//! Fault-target selection ([`EnvSchedule::select_fraction`]) hashes
//! cell coordinates with a caller seed, so the same seed always damages
//! the same cells regardless of iteration order.

use crate::device::DramDevice;
use crate::error::Result;
use crate::geometry::CellAddr;
use crate::math::{cell_key, unit_for_key};
use crate::temperature::Celsius;

/// Cumulative injected-fault counters of one device.
///
/// Monotone over the device's lifetime; harvest engines snapshot and
/// diff them to derive per-batch rates, exactly like
/// [`crate::SenseCacheStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Schedule-driven temperature changes (ramp steps and shocks).
    pub temperature_events: u64,
    /// Voltage-noise bias changes (burst onsets and clears).
    pub noise_bias_events: u64,
    /// Cells registered for activation-driven aging (first
    /// registrations, not coefficient updates).
    pub cells_aged: u64,
    /// Cells forced stuck-at (first injections per cell).
    pub cells_stuck: u64,
    /// READs whose result had at least one bit overridden by a stuck
    /// cell.
    pub stuck_read_overrides: u64,
    /// Fault-driven resolve-epoch flushes of the sensing cache (noise
    /// bias changes and aging-wear updates; temperature flushes are
    /// counted by the cache itself).
    pub margin_flushes: u64,
}

impl FaultStats {
    /// Total discrete injection events (temperature, noise, aging,
    /// stuck-at) — the headline "injected faults" counter.
    pub fn injected_events(&self) -> u64 {
        self.temperature_events + self.noise_bias_events + self.cells_aged + self.cells_stuck
    }

    /// Field-wise sum of two snapshots — aggregating per-channel
    /// counters into a fleet total.
    #[must_use]
    pub fn merge(self, other: FaultStats) -> FaultStats {
        FaultStats {
            temperature_events: self.temperature_events + other.temperature_events,
            noise_bias_events: self.noise_bias_events + other.noise_bias_events,
            cells_aged: self.cells_aged + other.cells_aged,
            cells_stuck: self.cells_stuck + other.cells_stuck,
            stuck_read_overrides: self.stuck_read_overrides + other.stuck_read_overrides,
            margin_flushes: self.margin_flushes + other.margin_flushes,
        }
    }
}

/// Per-cell activation-driven aging record.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AgedCell {
    /// Margin attenuation per 1000 activations of the cell's row, volts.
    pub(crate) wear_v_per_kiloact: f64,
    /// Wear currently in effect (recomputed only at schedule steps).
    pub(crate) wear_v: f64,
}

/// Stuck-at state of one word: `mask` selects the stuck bits, `value`
/// holds their forced values.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StuckWord {
    pub(crate) mask: u64,
    pub(crate) value: u64,
}

/// One environmental event of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvEvent {
    /// Time passes with no environmental change (aging wear is still
    /// refreshed from activation counts).
    Hold,
    /// Absolute chamber set-point change.
    SetTemperature(Celsius),
    /// Relative chamber change (°C); ramps are sequences of these.
    ShiftTemperature(f64),
    /// Global transient margin bias in volts (negative biases steal
    /// margin and raise failure probabilities); `0.0` ends a burst.
    NoiseBias(f64),
    /// Registers activation-driven aging on cells: margin attenuation
    /// of `wear_v_per_kiloact` volts per 1000 activations of each
    /// cell's row.
    AgeCells {
        /// The cells to age.
        cells: Vec<CellAddr>,
        /// Wear coefficient, volts per kilo-activation.
        wear_v_per_kiloact: f64,
    },
    /// Forces cells stuck at a value.
    StuckAt {
        /// The cells to pin.
        cells: Vec<CellAddr>,
        /// The value every listed cell reads as.
        value: bool,
    },
    /// Releases previously stuck cells.
    ClearStuck {
        /// The cells to release.
        cells: Vec<CellAddr>,
    },
}

/// A deterministic, replayable environmental fault schedule.
///
/// Build one with the fluent constructors, then drive it step by step
/// against a device ([`EnvSchedule::step`]) — typically once per
/// harvest batch, so "environment time" advances with sampling time.
///
/// ```rust
/// use dram_sim::{Celsius, DeviceConfig, EnvSchedule, Manufacturer};
///
/// let mut device = dram_sim::DramDevice::build(
///     DeviceConfig::new(Manufacturer::A).with_seed(1).with_noise_seed(2),
/// );
/// let mut schedule = EnvSchedule::new(7)
///     .hold(2)
///     .shock(20.0)           // +20 °C step shock
///     .ramp(-20.0, 4)        // cool back down in 4 steps
///     .noise_burst(-0.02, 3); // 3-step margin-stealing burst
/// while let Ok(Some(_event)) = schedule.step(&mut device) {}
/// ```
#[derive(Debug, Clone)]
pub struct EnvSchedule {
    events: Vec<EnvEvent>,
    next: usize,
    seed: u64,
}

impl EnvSchedule {
    /// An empty schedule. The seed feeds deterministic fault-target
    /// selection helpers; two schedules with the same seed and events
    /// injure the same cells.
    pub fn new(seed: u64) -> Self {
        EnvSchedule {
            events: Vec::new(),
            next: 0,
            seed,
        }
    }

    /// Appends `steps` do-nothing steps (time passes, wear refreshes).
    pub fn hold(mut self, steps: usize) -> Self {
        self.events
            .extend(std::iter::repeat(EnvEvent::Hold).take(steps));
        self
    }

    /// Appends an absolute temperature set-point.
    pub fn set_temperature(mut self, t: Celsius) -> Self {
        self.events.push(EnvEvent::SetTemperature(t));
        self
    }

    /// Appends a single-step temperature shock of `delta_c` degrees.
    pub fn shock(mut self, delta_c: f64) -> Self {
        self.events.push(EnvEvent::ShiftTemperature(delta_c));
        self
    }

    /// Appends a linear ramp: `delta_c` degrees spread evenly over
    /// `steps` steps (no-op when `steps == 0`).
    pub fn ramp(mut self, delta_c: f64, steps: usize) -> Self {
        if steps > 0 {
            let per = delta_c / steps as f64;
            self.events
                .extend(std::iter::repeat(EnvEvent::ShiftTemperature(per)).take(steps));
        }
        self
    }

    /// Appends a voltage-noise burst: bias onset, `steps − 1` held
    /// steps, then a clearing `NoiseBias(0.0)` (no-op when
    /// `steps == 0`).
    pub fn noise_burst(mut self, bias_v: f64, steps: usize) -> Self {
        if steps > 0 {
            self.events.push(EnvEvent::NoiseBias(bias_v));
            self.events
                .extend(std::iter::repeat(EnvEvent::Hold).take(steps - 1));
            self.events.push(EnvEvent::NoiseBias(0.0));
        }
        self
    }

    /// Appends an aging registration for `cells`.
    pub fn age_cells(mut self, cells: &[CellAddr], wear_v_per_kiloact: f64) -> Self {
        self.events.push(EnvEvent::AgeCells {
            cells: cells.to_vec(),
            wear_v_per_kiloact,
        });
        self
    }

    /// Appends a stuck-at injection for `cells`.
    pub fn stuck_at(mut self, cells: &[CellAddr], value: bool) -> Self {
        self.events.push(EnvEvent::StuckAt {
            cells: cells.to_vec(),
            value,
        });
        self
    }

    /// Appends a stuck-at release for `cells`.
    pub fn clear_stuck(mut self, cells: &[CellAddr]) -> Self {
        self.events.push(EnvEvent::ClearStuck {
            cells: cells.to_vec(),
        });
        self
    }

    /// Appends a raw event.
    pub fn push(mut self, event: EnvEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Deterministically selects ≈ `fraction` of `cells` using this
    /// schedule's seed: a cell is selected iff the unit draw hashed
    /// from its coordinates falls below `fraction`. Independent of the
    /// order of `cells`.
    pub fn select_fraction(&self, cells: &[CellAddr], fraction: f64) -> Vec<CellAddr> {
        select_fraction(self.seed, cells, fraction)
    }

    /// Total number of events in the schedule.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Index of the next event to apply.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Whether every event has been applied.
    pub fn is_finished(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Applies the next event to `device` and refreshes aging wear from
    /// the device's activation counts. Returns the applied event, or
    /// `None` when the schedule is exhausted (wear is still refreshed,
    /// so aging keeps accruing on a finished schedule).
    ///
    /// # Errors
    ///
    /// Propagates addressing errors for out-of-geometry cells named in
    /// aging or stuck-at events.
    pub fn step(&mut self, device: &mut DramDevice) -> Result<Option<EnvEvent>> {
        let Some(event) = self.events.get(self.next).cloned() else {
            device.refresh_aging();
            return Ok(None);
        };
        self.next += 1;
        match &event {
            EnvEvent::Hold => {}
            EnvEvent::SetTemperature(t) => device.inject_temperature(*t),
            EnvEvent::ShiftTemperature(d) => {
                let t = device.temperature().plus(*d);
                device.inject_temperature(t);
            }
            EnvEvent::NoiseBias(bias) => device.set_margin_bias(*bias),
            EnvEvent::AgeCells {
                cells,
                wear_v_per_kiloact,
            } => {
                for &cell in cells {
                    device.age_cell(cell, *wear_v_per_kiloact)?;
                }
            }
            EnvEvent::StuckAt { cells, value } => {
                for &cell in cells {
                    device.set_stuck(cell, *value)?;
                }
            }
            EnvEvent::ClearStuck { cells } => {
                for &cell in cells {
                    device.clear_stuck(cell)?;
                }
            }
        }
        device.refresh_aging();
        Ok(Some(event))
    }

    /// Applies every remaining event.
    ///
    /// # Errors
    ///
    /// Propagates the first event-application error.
    pub fn run_to_end(&mut self, device: &mut DramDevice) -> Result<usize> {
        let mut applied = 0;
        while self.step(device)?.is_some() {
            applied += 1;
        }
        Ok(applied)
    }
}

/// Free-function form of [`EnvSchedule::select_fraction`] for callers
/// that have no schedule yet.
pub fn select_fraction(seed: u64, cells: &[CellAddr], fraction: f64) -> Vec<CellAddr> {
    const SALT: u64 = 0xFA17_5E1E_C7;
    cells
        .iter()
        .copied()
        .filter(|c| {
            let key = cell_key(
                seed,
                SALT,
                c.bank as u64,
                c.row as u64,
                c.col as u64,
                c.bit as u64,
            );
            unit_for_key(key) < fraction
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_pattern::DataPattern;
    use crate::device::DeviceConfig;
    use crate::manufacturer::Manufacturer;

    fn device() -> DramDevice {
        DramDevice::build(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(3)
                .with_noise_seed(4),
        )
    }

    #[test]
    fn ramp_expands_to_even_steps_and_reaches_target() {
        let mut d = device();
        let mut s = EnvSchedule::new(0).ramp(20.0, 8);
        assert_eq!(s.len(), 8);
        s.run_to_end(&mut d).unwrap();
        assert!((d.temperature().degrees() - 65.0).abs() < 1e-9);
        assert_eq!(d.fault_stats().temperature_events, 8);
    }

    #[test]
    fn noise_burst_sets_holds_and_clears() {
        let mut d = device();
        let mut s = EnvSchedule::new(0).noise_burst(-0.03, 3);
        assert_eq!(s.len(), 4, "onset + 2 holds + clear");
        s.step(&mut d).unwrap();
        assert_eq!(d.margin_bias_v(), -0.03);
        s.step(&mut d).unwrap();
        s.step(&mut d).unwrap();
        assert_eq!(d.margin_bias_v(), -0.03, "bias holds");
        s.step(&mut d).unwrap();
        assert_eq!(d.margin_bias_v(), 0.0, "burst cleared");
        assert!(s.is_finished());
        assert_eq!(d.fault_stats().noise_bias_events, 2);
    }

    #[test]
    fn exhausted_schedule_returns_none_but_refreshes_wear() {
        let mut d = device();
        let cell = CellAddr::new(0, 1, 0, 0);
        let mut s = EnvSchedule::new(0).age_cells(&[cell], 0.01);
        s.run_to_end(&mut d).unwrap();
        assert_eq!(d.cell_wear_v(cell), 0.0, "no activations yet");
        for _ in 0..2000 {
            d.activate(0, 1).unwrap();
            d.precharge(0).unwrap();
        }
        assert_eq!(d.cell_wear_v(cell), 0.0, "wear only moves at steps");
        assert!(s.step(&mut d).unwrap().is_none());
        assert!((d.cell_wear_v(cell) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn select_fraction_is_deterministic_and_order_independent() {
        let cells: Vec<CellAddr> = (0..400)
            .map(|i| CellAddr::new(i % 4, i / 4, i % 16, i % 64))
            .collect();
        let mut reversed = cells.clone();
        reversed.reverse();
        let a = select_fraction(9, &cells, 0.25);
        let mut b = select_fraction(9, &reversed, 0.25);
        b.reverse();
        assert_eq!(a, b, "selection is per-cell, not order-dependent");
        assert!(!a.is_empty() && a.len() < cells.len());
        let c = select_fraction(10, &cells, 0.25);
        assert_ne!(a, c, "different seed, different victims");
        assert!(select_fraction(9, &cells, 0.0).is_empty());
        assert_eq!(select_fraction(9, &cells, 1.0).len(), cells.len());
    }

    #[test]
    fn stuck_at_pins_reads_until_cleared() {
        let mut d = device();
        d.fill_bank(0, DataPattern::Solid0);
        let cell = CellAddr::new(0, 2, 3, 7);
        let mut s = EnvSchedule::new(0)
            .stuck_at(&[cell], true)
            .clear_stuck(&[cell]);
        s.step(&mut d).unwrap();
        d.activate(0, 2).unwrap();
        let got = d.read(0, 2, 3, 18.0).unwrap();
        d.precharge(0).unwrap();
        assert_eq!((got >> 7) & 1, 1, "stuck-high bit reads 1");
        assert!(d.fault_stats().stuck_read_overrides >= 1);
        s.step(&mut d).unwrap();
        d.activate(0, 2).unwrap();
        let got = d.read(0, 2, 3, 18.0).unwrap();
        d.precharge(0).unwrap();
        // Guard-band reads never touch the restore path, so the stored
        // array was untouched and the release is fully clean.
        assert_eq!((got >> 7) & 1, 0, "released cell reads stored data");
        assert_eq!(d.stuck_cell_count(), 0);
    }
}
