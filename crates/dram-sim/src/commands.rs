//! DRAM command vocabulary (Section 2.1.3 of the paper).

use serde::{Deserialize, Serialize};

/// The kind of a DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Activate (open) a row: copy it into the local row buffer.
    Act,
    /// Precharge (close) the open row of a bank.
    Pre,
    /// Read one DRAM word from the open row.
    Rd,
    /// Write one DRAM word into the open row.
    Wr,
    /// Refresh (restore charge of rows due for refresh).
    Ref,
}

impl CommandKind {
    /// Short uppercase mnemonic as it would appear in a command trace.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CommandKind::Act => "ACT",
            CommandKind::Pre => "PRE",
            CommandKind::Rd => "RD",
            CommandKind::Wr => "WR",
            CommandKind::Ref => "REF",
        }
    }
}

impl std::fmt::Display for CommandKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One issued DRAM command with its issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Command {
    /// What was issued.
    pub kind: CommandKind,
    /// Target bank.
    pub bank: usize,
    /// Target row (meaningful for ACT; 0 otherwise).
    pub row: usize,
    /// Target column (meaningful for RD/WR; 0 otherwise).
    pub col: usize,
    /// Issue time in picoseconds from the start of the trace.
    pub at_ps: u64,
}

impl Command {
    /// Constructs an ACT command.
    pub fn act(bank: usize, row: usize, at_ps: u64) -> Self {
        Command {
            kind: CommandKind::Act,
            bank,
            row,
            col: 0,
            at_ps,
        }
    }

    /// Constructs a PRE command.
    pub fn pre(bank: usize, at_ps: u64) -> Self {
        Command {
            kind: CommandKind::Pre,
            bank,
            row: 0,
            col: 0,
            at_ps,
        }
    }

    /// Constructs a RD command.
    pub fn rd(bank: usize, row: usize, col: usize, at_ps: u64) -> Self {
        Command {
            kind: CommandKind::Rd,
            bank,
            row,
            col,
            at_ps,
        }
    }

    /// Constructs a WR command.
    pub fn wr(bank: usize, row: usize, col: usize, at_ps: u64) -> Self {
        Command {
            kind: CommandKind::Wr,
            bank,
            row,
            col,
            at_ps,
        }
    }

    /// Constructs a REF command.
    pub fn refresh(at_ps: u64) -> Self {
        Command {
            kind: CommandKind::Ref,
            bank: 0,
            row: 0,
            col: 0,
            at_ps,
        }
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>10} ps  {} b{} r{} c{}",
            self.at_ps,
            self.kind.mnemonic(),
            self.bank,
            self.row,
            self.col
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Command::act(1, 2, 3).kind, CommandKind::Act);
        assert_eq!(Command::pre(1, 3).kind, CommandKind::Pre);
        assert_eq!(Command::rd(1, 2, 4, 3).kind, CommandKind::Rd);
        assert_eq!(Command::wr(1, 2, 4, 3).kind, CommandKind::Wr);
        assert_eq!(Command::refresh(9).kind, CommandKind::Ref);
    }

    #[test]
    fn display_contains_mnemonic_and_time() {
        let c = Command::rd(2, 7, 5, 1234);
        let s = c.to_string();
        assert!(s.contains("RD") && s.contains("1234") && s.contains("b2"));
    }

    #[test]
    fn mnemonics_are_unique() {
        let all = [
            CommandKind::Act,
            CommandKind::Pre,
            CommandKind::Rd,
            CommandKind::Wr,
            CommandKind::Ref,
        ];
        let set: std::collections::HashSet<_> = all.iter().map(|k| k.mnemonic()).collect();
        assert_eq!(set.len(), all.len());
    }
}
