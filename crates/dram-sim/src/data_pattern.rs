//! The 40 data patterns of the paper's data-pattern-dependence study
//! (Section 5.2): solid 1s, checkered, row stripe, column stripe, 16
//! walking-1s, and the inverses of all 20.

use serde::{Deserialize, Serialize};

/// Period of the walking patterns (WALK1/WALK0 have 16 phases each).
pub const WALK_PERIOD: usize = 16;

/// A background data pattern written to a DRAM region under test.
///
/// A pattern defines the bit stored at every `(row, bitline)` coordinate.
/// Pattern choice matters because adjacent bitlines and the cell's own
/// stored charge shift the sensing margin (the paper's data pattern
/// dependence, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPattern {
    /// All cells store 1.
    Solid1,
    /// All cells store 0 (inverse of [`DataPattern::Solid1`]).
    Solid0,
    /// Checkerboard: bit = (row + bitline) parity.
    Checkered,
    /// Inverted checkerboard.
    CheckeredInv,
    /// Alternating rows of 1s and 0s (even rows 1).
    RowStripe,
    /// Alternating rows of 0s and 1s (even rows 0).
    RowStripeInv,
    /// Alternating bitlines of 1s and 0s (even bitlines 1).
    ColStripe,
    /// Alternating bitlines of 0s and 1s (even bitlines 0).
    ColStripeInv,
    /// A single walking 1 every 16 bitlines; phase in `0..16`.
    Walk1(u8),
    /// A single walking 0 every 16 bitlines; phase in `0..16`.
    Walk0(u8),
}

impl DataPattern {
    /// All 40 patterns of the paper's study, in a stable order.
    pub fn all_40() -> Vec<DataPattern> {
        let mut v = vec![
            DataPattern::Solid1,
            DataPattern::Solid0,
            DataPattern::Checkered,
            DataPattern::CheckeredInv,
            DataPattern::RowStripe,
            DataPattern::RowStripeInv,
            DataPattern::ColStripe,
            DataPattern::ColStripeInv,
        ];
        for k in 0..WALK_PERIOD as u8 {
            v.push(DataPattern::Walk1(k));
        }
        for k in 0..WALK_PERIOD as u8 {
            v.push(DataPattern::Walk0(k));
        }
        v
    }

    /// The bit this pattern stores at `(row, bitline)`.
    #[inline]
    pub fn bit(&self, row: usize, bitline: usize) -> bool {
        match *self {
            DataPattern::Solid1 => true,
            DataPattern::Solid0 => false,
            DataPattern::Checkered => (row + bitline) % 2 == 0,
            DataPattern::CheckeredInv => (row + bitline) % 2 == 1,
            DataPattern::RowStripe => row % 2 == 0,
            DataPattern::RowStripeInv => row % 2 == 1,
            DataPattern::ColStripe => bitline % 2 == 0,
            DataPattern::ColStripeInv => bitline % 2 == 1,
            DataPattern::Walk1(k) => bitline % WALK_PERIOD == k as usize,
            DataPattern::Walk0(k) => bitline % WALK_PERIOD != k as usize,
        }
    }

    /// The 64-bit word this pattern stores at `(row, col)` for a device
    /// with `word_bits` bits per word.
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is zero or exceeds 64.
    pub fn word(&self, row: usize, col: usize, word_bits: usize) -> u64 {
        assert!(
            word_bits >= 1 && word_bits <= 64,
            "word_bits must be 1..=64"
        );
        let mut w = 0u64;
        for bit in 0..word_bits {
            if self.bit(row, col * word_bits + bit) {
                w |= 1u64 << bit;
            }
        }
        w
    }

    /// The bitwise inverse of this pattern.
    pub fn inverse(&self) -> DataPattern {
        match *self {
            DataPattern::Solid1 => DataPattern::Solid0,
            DataPattern::Solid0 => DataPattern::Solid1,
            DataPattern::Checkered => DataPattern::CheckeredInv,
            DataPattern::CheckeredInv => DataPattern::Checkered,
            DataPattern::RowStripe => DataPattern::RowStripeInv,
            DataPattern::RowStripeInv => DataPattern::RowStripe,
            DataPattern::ColStripe => DataPattern::ColStripeInv,
            DataPattern::ColStripeInv => DataPattern::ColStripe,
            DataPattern::Walk1(k) => DataPattern::Walk0(k),
            DataPattern::Walk0(k) => DataPattern::Walk1(k),
        }
    }

    /// True for the 32 walking patterns.
    pub fn is_walking(&self) -> bool {
        matches!(self, DataPattern::Walk1(_) | DataPattern::Walk0(_))
    }
}

impl std::fmt::Display for DataPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DataPattern::Solid1 => write!(f, "SOLID1"),
            DataPattern::Solid0 => write!(f, "SOLID0"),
            DataPattern::Checkered => write!(f, "CHECKERED"),
            DataPattern::CheckeredInv => write!(f, "CHECKERED_INV"),
            DataPattern::RowStripe => write!(f, "ROWSTRIPE"),
            DataPattern::RowStripeInv => write!(f, "ROWSTRIPE_INV"),
            DataPattern::ColStripe => write!(f, "COLSTRIPE"),
            DataPattern::ColStripeInv => write!(f, "COLSTRIPE_INV"),
            DataPattern::Walk1(k) => write!(f, "WALK1[{k}]"),
            DataPattern::Walk0(k) => write!(f, "WALK0[{k}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_40_patterns() {
        let all = DataPattern::all_40();
        assert_eq!(all.len(), 40);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 40, "patterns must be distinct");
    }

    #[test]
    fn every_pattern_has_its_inverse_in_the_set() {
        let all = DataPattern::all_40();
        let set: std::collections::HashSet<_> = all.iter().copied().collect();
        for p in &all {
            assert!(set.contains(&p.inverse()), "{p} inverse missing");
            assert_eq!(p.inverse().inverse(), *p);
        }
    }

    #[test]
    fn inverse_flips_every_bit() {
        for p in DataPattern::all_40() {
            for row in 0..4 {
                for bl in 0..40 {
                    assert_ne!(
                        p.bit(row, bl),
                        p.inverse().bit(row, bl),
                        "{p} at ({row},{bl})"
                    );
                }
            }
        }
    }

    #[test]
    fn walking_one_has_one_hot_per_period() {
        for k in 0..WALK_PERIOD as u8 {
            let p = DataPattern::Walk1(k);
            let ones: usize = (0..WALK_PERIOD).filter(|&bl| p.bit(0, bl)).count();
            assert_eq!(ones, 1);
            assert!(p.bit(0, k as usize));
        }
    }

    #[test]
    fn word_packs_bits_lsb_first() {
        // ColStripe: even bitlines are 1. Word 0 bits 0,2,4... -> 0x5555...
        let w = DataPattern::ColStripe.word(0, 0, 64);
        assert_eq!(w, 0x5555_5555_5555_5555);
        let w = DataPattern::ColStripeInv.word(0, 0, 64);
        assert_eq!(w, 0xAAAA_AAAA_AAAA_AAAA);
        // Solid1 with narrow word keeps only low bits.
        assert_eq!(DataPattern::Solid1.word(3, 9, 8), 0xFF);
    }

    #[test]
    fn checkered_alternates_with_row() {
        assert_ne!(
            DataPattern::Checkered.word(0, 0, 64),
            DataPattern::Checkered.word(1, 0, 64)
        );
        assert_eq!(
            DataPattern::Checkered.word(0, 0, 64),
            DataPattern::Checkered.word(2, 0, 64)
        );
    }

    #[test]
    #[should_panic(expected = "word_bits")]
    fn word_rejects_oversized_word() {
        let _ = DataPattern::Solid1.word(0, 0, 65);
    }

    #[test]
    fn display_is_unique() {
        let names: std::collections::HashSet<String> = DataPattern::all_40()
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(names.len(), 40);
    }
}
