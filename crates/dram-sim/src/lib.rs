//! # dram-sim — behavioral DRAM device model for D-RaNGe
//!
//! This crate simulates commodity DRAM devices at the level of detail the
//! D-RaNGe paper (Kim et al., HPCA 2019) depends on:
//!
//! * **Geometry** — banks/subarrays/rows/columns/cells
//!   ([`Geometry`], [`CellAddr`], [`WordAddr`]).
//! * **Timing** — JEDEC-style timing parameters in picoseconds with
//!   LPDDR4-3200 and DDR3-1600 presets ([`TimingParams`]).
//! * **Activation-failure physics** — a probit model of the bitline
//!   voltage at READ time: reading a row with a `tRCD` below the
//!   manufacturer-recommended value leaves the bitline only partially
//!   amplified, so the sensed value is wrong with a probability that
//!   depends on process variation (per-bitline sense-amp strength,
//!   row distance from the sense amps, per-cell offsets), the stored data
//!   pattern, and temperature ([`DramDevice::read`]).
//! * **Entropy** — the only nondeterministic input at sampling time is a
//!   thermal-noise draw ([`NoiseSource`]); everything else is fixed at
//!   "manufacturing" time from a seed, mirroring the paper's hypothesis
//!   that activation-failure entropy comes from sense-amplifier
//!   metastability over a manufacturing-variation-determined margin.
//! * **Alternative entropy mechanisms used by baseline TRNGs** — data
//!   retention failures ([`retention`]) and startup values ([`startup`]).
//! * **Energy accounting** — a DRAMPower-style per-command energy model
//!   ([`EnergyModel`]) over recorded command traces ([`CommandTrace`]).
//!
//! The model is fully deterministic given a seed except for the noise
//! source, which defaults to an OS-seeded RNG (the "true randomness"
//! stand-in) and can be replaced by a seeded source for reproducible
//! tests.
//!
//! ## Example
//!
//! ```rust
//! use dram_sim::{DeviceConfig, DramDevice, Manufacturer, DataPattern};
//!
//! # fn main() -> dram_sim::Result<()> {
//! let config = DeviceConfig::new(Manufacturer::A).with_seed(42).with_noise_seed(7);
//! let mut device = DramDevice::build(config);
//!
//! // Fill bank 0, row 3 with the solid-zero pattern and read it back with
//! // a reduced activation latency; some bits may flip.
//! device.fill_row(0, 3, DataPattern::Solid0);
//! device.activate(0, 3)?;
//! let word = device.read(0, 3, 0, 10.0)?; // tRCD = 10 ns < 18 ns spec
//! device.precharge(0)?;
//! let _ = word;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod data_pattern;
pub mod device;
pub mod energy;
pub mod entropy;
pub mod error;
pub mod faults;
pub mod geometry;
pub mod manufacturer;
pub mod math;
pub mod pgm;
pub mod probit;
pub mod retention;
mod sense_cache;
pub mod startup;
pub mod temperature;
pub mod timing;
pub mod trace;
pub mod variation;
pub mod waveform;

pub use commands::{Command, CommandKind};
pub use data_pattern::DataPattern;
pub use device::{DeviceConfig, DramDevice};
pub use energy::EnergyModel;
pub use entropy::{NoiseSource, OsNoise, SeededNoise};
pub use error::{DramError, Result};
pub use faults::{select_fraction, EnvEvent, EnvSchedule, FaultStats};
pub use geometry::{CellAddr, Geometry, WordAddr};
pub use manufacturer::{Manufacturer, PhysicsProfile};
pub use sense_cache::SenseCacheStats;
pub use temperature::Celsius;
pub use timing::{DramStandard, TimingParams};
pub use trace::CommandTrace;
