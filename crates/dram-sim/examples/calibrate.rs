//! One-off calibration probe (developer tool).
use dram_sim::*;

fn main() {
    for m in Manufacturer::ALL {
        let mut d = DramDevice::build(DeviceConfig::new(m).with_seed(3).with_noise_seed(4));
        d.fill_device(DataPattern::Solid0);
        let g = d.geometry();
        let mut meta = 0usize; // Fprob in [0.4,0.6]
        let mut fail_any = 0usize; // Fprob > 0.01
        let mut words_with = [0usize; 5];
        let mut spec_fail = 0usize;
        for bank in 0..1 {
            for row in 0..g.rows {
                for col in 0..g.cols {
                    let mut in_word = 0usize;
                    for bit in 0..g.word_bits {
                        let c = CellAddr::new(bank, row, col, bit);
                        let f = d.failure_probability(c, 10.0);
                        if f > 0.01 {
                            fail_any += 1;
                        }
                        if (0.4..=0.6).contains(&f) {
                            meta += 1;
                            in_word += 1;
                        }
                        if d.failure_probability(c, 18.0) > 1e-6 {
                            spec_fail += 1;
                        }
                    }
                    words_with[in_word.min(4)] += 1;
                }
            }
        }
        let cells = g.cells_per_bank();
        println!("mfr {m}: cells/bank={} failing(>1%)={} meta(40-60%)={} spec_risky={} words_with_1..4={:?}",
            cells, fail_any, meta, spec_fail, &words_with[1..]);
    }
}
