//! The memory controller: binds the scheduler to a device, carries the
//! programmable timing registers, and records command traces.

use dram_sim::commands::CommandKind;
use dram_sim::{CommandTrace, DeviceConfig, DramDevice};
use drange_telemetry::{Counter, Gauge, MetricsRegistry};

use crate::error::Result;
use crate::registers::TimingRegisters;
use crate::schedule::CommandScheduler;

/// Telemetry handles for one controller (one channel). All handles
/// default to no-ops; [`MemoryController::attach_telemetry`] swaps in
/// live ones.
#[derive(Debug, Clone, Default)]
struct ControllerTelemetry {
    act: Counter,
    rd: Counter,
    wr: Counter,
    pre: Counter,
    trcd_writes: Counter,
    trcd_ps: Gauge,
}

impl ControllerTelemetry {
    fn attach(registry: &MetricsRegistry, channel: &str) -> Self {
        let cmd = |kind: &str| {
            registry.counter(
                "memctrl_commands_total",
                &[("kind", kind), ("channel", channel)],
            )
        };
        ControllerTelemetry {
            act: cmd("act"),
            rd: cmd("rd"),
            wr: cmd("wr"),
            pre: cmd("pre"),
            trcd_writes: registry.counter("memctrl_trcd_writes_total", &[("channel", channel)]),
            trcd_ps: registry.gauge("memctrl_trcd_ps", &[("channel", channel)]),
        }
    }
}

/// A single-channel memory controller driving one [`DramDevice`].
///
/// All data-path operations go through the command protocol: the
/// scheduler stamps each command at its earliest legal time (accounting
/// wall-clock cycles) and the device executes its data/failure
/// semantics. The controller optionally records every issued command
/// into a [`CommandTrace`] for energy analysis.
#[derive(Debug)]
pub struct MemoryController {
    device: DramDevice,
    registers: TimingRegisters,
    scheduler: CommandScheduler,
    trace: CommandTrace,
    recording: bool,
    telemetry: ControllerTelemetry,
}

impl MemoryController {
    /// Wraps an existing device.
    pub fn new(device: DramDevice) -> Self {
        let registers = TimingRegisters::new(device.timing());
        let mut scheduler = CommandScheduler::new(device.geometry().banks, registers.effective());
        scheduler.set_overhead_ps(registers.cmd_overhead_ps());
        MemoryController {
            device,
            registers,
            scheduler,
            trace: CommandTrace::new(),
            recording: false,
            telemetry: ControllerTelemetry::default(),
        }
    }

    /// Registers this controller's metrics (per-kind command counts,
    /// tRCD timing-register writes, current tRCD) in `registry`,
    /// labeled by `channel`. Without this call all instrumentation is
    /// no-op.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry, channel: &str) {
        self.telemetry = ControllerTelemetry::attach(registry, channel);
        self.telemetry.trcd_ps.set(self.registers.trcd_ps());
    }

    /// Builds the device from a configuration and wraps it.
    pub fn from_config(config: DeviceConfig) -> Self {
        MemoryController::new(DramDevice::build(config))
    }

    /// The device behind this controller.
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Mutable access to the device (temperature control, direct fills).
    pub fn device_mut(&mut self) -> &mut DramDevice {
        &mut self.device
    }

    /// The controller's timing registers.
    pub fn registers(&self) -> &TimingRegisters {
        &self.registers
    }

    /// Programs a (possibly spec-violating) `tRCD`.
    ///
    /// # Panics
    ///
    /// Panics if `trcd_ns` is not a positive finite duration; use
    /// [`TimingRegisters::set_trcd_ns`] through
    /// [`MemoryController::try_set_trcd_ns`] for fallible programming.
    pub fn set_trcd_ns(&mut self, trcd_ns: f64) {
        // xtask:allow(no-panic) -- documented panicking convenience; try_set_trcd_ns is the fallible form
        self.try_set_trcd_ns(trcd_ns).expect("valid tRCD");
    }

    /// Fallible version of [`MemoryController::set_trcd_ns`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::MemError::InvalidRegister`] for non-positive or
    /// non-finite values.
    pub fn try_set_trcd_ns(&mut self, trcd_ns: f64) -> Result<()> {
        self.registers.set_trcd_ns(trcd_ns)?;
        self.scheduler.set_timing(self.registers.effective());
        self.device.notify_timing_change(self.registers.trcd_ns());
        self.telemetry.trcd_writes.inc();
        self.telemetry.trcd_ps.set(self.registers.trcd_ps());
        Ok(())
    }

    /// Restores the datasheet `tRCD`.
    pub fn reset_trcd(&mut self) {
        self.registers.reset_trcd();
        self.scheduler.set_timing(self.registers.effective());
        self.device.notify_timing_change(self.registers.trcd_ns());
        self.telemetry.trcd_writes.inc();
        self.telemetry.trcd_ps.set(self.registers.trcd_ps());
    }

    /// The currently programmed `tRCD` in ns.
    pub fn trcd_ns(&self) -> f64 {
        self.registers.trcd_ns()
    }

    /// Sets the firmware per-command overhead.
    pub fn set_cmd_overhead_ps(&mut self, ps: u64) {
        self.registers.set_cmd_overhead_ps(ps);
        self.scheduler.set_overhead_ps(ps);
    }

    /// Current scheduler time, ps.
    pub fn now_ps(&self) -> u64 {
        self.scheduler.now_ps()
    }

    /// Advances time without commands (host delay / refresh pause).
    pub fn advance_ps(&mut self, ps: u64) {
        self.scheduler.advance(ps);
    }

    /// Starts recording issued commands.
    pub fn start_recording(&mut self) {
        self.recording = true;
        self.trace.clear();
    }

    /// Stops recording and returns the captured trace.
    pub fn stop_recording(&mut self) -> CommandTrace {
        self.recording = false;
        std::mem::take(&mut self.trace)
    }

    /// The scheduler (analysis access).
    pub fn scheduler(&self) -> &CommandScheduler {
        &self.scheduler
    }

    // ------------------------------------------------------------------
    // Command primitives.
    // ------------------------------------------------------------------

    /// ACT: opens `row` in `bank`.
    ///
    /// # Errors
    ///
    /// Scheduling errors for illegal sequences; device errors for
    /// addressing problems.
    pub fn act(&mut self, bank: usize, row: usize) -> Result<()> {
        let cmd = self.scheduler.issue(CommandKind::Act, bank, row, 0)?;
        self.device.activate(bank, row)?;
        self.telemetry.act.inc();
        if self.recording {
            self.trace.push(cmd);
        }
        Ok(())
    }

    /// RD: reads one word from the open row of `bank`, with the failure
    /// path driven by the *currently programmed* `tRCD`.
    ///
    /// # Errors
    ///
    /// Scheduling errors for illegal sequences; device errors for
    /// addressing/row mismatches.
    pub fn rd(&mut self, bank: usize, row: usize, col: usize) -> Result<u64> {
        let cmd = self.scheduler.issue(CommandKind::Rd, bank, row, col)?;
        let word = self.device.read(bank, row, col, self.registers.trcd_ns())?;
        self.telemetry.rd.inc();
        if self.recording {
            self.trace.push(cmd);
        }
        Ok(word)
    }

    /// WR: writes one word into the open row of `bank`.
    ///
    /// # Errors
    ///
    /// Scheduling errors for illegal sequences; device errors for
    /// addressing/row mismatches.
    pub fn wr(&mut self, bank: usize, row: usize, col: usize, value: u64) -> Result<()> {
        let cmd = self.scheduler.issue(CommandKind::Wr, bank, row, col)?;
        self.device.write(bank, row, col, value)?;
        self.telemetry.wr.inc();
        if self.recording {
            self.trace.push(cmd);
        }
        Ok(())
    }

    /// PRE: closes the open row of `bank`.
    ///
    /// # Errors
    ///
    /// Scheduling errors for illegal sequences.
    pub fn pre(&mut self, bank: usize) -> Result<()> {
        let cmd = self.scheduler.issue(CommandKind::Pre, bank, 0, 0)?;
        self.device.precharge(bank)?;
        self.telemetry.pre.inc();
        if self.recording {
            self.trace.push(cmd);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Convenience sequences used by the D-RaNGe algorithms.
    // ------------------------------------------------------------------

    /// ACT + PRE: refreshes a row's charge (Algorithm 1, lines 6-7).
    ///
    /// # Errors
    ///
    /// Propagates command errors.
    pub fn refresh_row(&mut self, bank: usize, row: usize) -> Result<()> {
        self.act(bank, row)?;
        self.pre(bank)
    }

    /// ACT + RD + PRE: one fresh-activation read of a word, returning
    /// the (possibly failing) sensed value.
    ///
    /// # Errors
    ///
    /// Propagates command errors.
    pub fn read_fresh(&mut self, bank: usize, row: usize, col: usize) -> Result<u64> {
        self.act(bank, row)?;
        let word = self.rd(bank, row, col)?;
        self.pre(bank)?;
        Ok(word)
    }

    /// Consumes the controller and returns the device.
    pub fn into_device(self) -> DramDevice {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DataPattern, Manufacturer, WordAddr};

    fn ctrl() -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(21)
                .with_noise_seed(22),
        )
    }

    #[test]
    fn spec_timing_round_trip() {
        let mut c = ctrl();
        c.act(0, 9).unwrap();
        c.wr(0, 9, 4, 0xDEAD_BEEF).unwrap();
        c.pre(0).unwrap();
        let got = c.read_fresh(0, 9, 4).unwrap();
        assert_eq!(got, 0xDEAD_BEEF);
    }

    #[test]
    fn reduced_trcd_induces_failures_via_controller() {
        let mut c = ctrl();
        c.device_mut().fill_bank(0, DataPattern::Solid0);
        c.set_trcd_ns(10.0);
        let mut failures = 0u64;
        for row in 0..1024 {
            for col in 0..16 {
                // Refresh then induce (Algorithm 1 inner loop).
                c.refresh_row(0, row).unwrap();
                let w = c.read_fresh(0, row, col).unwrap();
                failures += w.count_ones() as u64;
                if w != 0 {
                    c.act(0, row).unwrap();
                    c.wr(0, row, col, 0).unwrap();
                    c.pre(0).unwrap();
                }
            }
        }
        assert!(failures > 0);
        c.reset_trcd();
        assert_eq!(c.trcd_ns(), 18.0);
    }

    #[test]
    fn scheduler_time_advances_with_commands() {
        let mut c = ctrl();
        let t0 = c.now_ps();
        c.read_fresh(0, 0, 0).unwrap();
        let t1 = c.now_ps();
        assert!(t1 > t0 + c.registers().datasheet().tras_ps);
    }

    #[test]
    fn recording_captures_all_commands() {
        let mut c = ctrl();
        c.start_recording();
        c.read_fresh(0, 3, 1).unwrap();
        c.refresh_row(0, 5).unwrap();
        let trace = c.stop_recording();
        assert_eq!(trace.count(CommandKind::Act), 2);
        assert_eq!(trace.count(CommandKind::Rd), 1);
        assert_eq!(trace.count(CommandKind::Pre), 2);
        assert!(trace.is_time_ordered());
        // Recording stopped: further commands are not captured.
        c.read_fresh(0, 3, 1).unwrap();
        assert_eq!(c.stop_recording().len(), 0);
    }

    #[test]
    fn try_set_trcd_rejects_garbage() {
        let mut c = ctrl();
        assert!(c.try_set_trcd_ns(-1.0).is_err());
        assert!(c.try_set_trcd_ns(f64::INFINITY).is_err());
        assert_eq!(c.trcd_ns(), 18.0);
    }

    #[test]
    fn into_device_preserves_data() {
        let mut c = ctrl();
        c.device_mut().poke(WordAddr::new(0, 0, 0), 42).unwrap();
        let d = c.into_device();
        assert_eq!(d.peek(WordAddr::new(0, 0, 0)).unwrap(), 42);
    }

    #[test]
    fn telemetry_counts_commands_and_trcd_writes() {
        let registry = MetricsRegistry::new();
        let mut c = ctrl();
        c.attach_telemetry(&registry, "0");
        c.set_trcd_ns(10.0);
        c.refresh_row(0, 3).unwrap(); // ACT + PRE
        let _ = c.read_fresh(0, 3, 1).unwrap(); // ACT + RD + PRE
        c.wr(0, 0, 0, 0).unwrap_err(); // no open row: must NOT count
        c.reset_trcd();
        let text = registry.render_prometheus();
        assert!(
            text.contains("memctrl_commands_total{channel=\"0\",kind=\"act\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("memctrl_commands_total{channel=\"0\",kind=\"rd\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("memctrl_commands_total{channel=\"0\",kind=\"pre\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("memctrl_commands_total{channel=\"0\",kind=\"wr\"} 0"),
            "failed commands are not counted: {text}"
        );
        assert!(
            text.contains("memctrl_trcd_writes_total{channel=\"0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("memctrl_trcd_ps{channel=\"0\"} 18000"),
            "{text}"
        );
    }

    #[test]
    fn telemetry_defaults_to_noop() {
        let mut c = ctrl();
        c.set_trcd_ns(12.0);
        let _ = c.read_fresh(0, 0, 0).unwrap();
        assert!(!c.telemetry.act.is_live());
    }

    #[test]
    fn advance_ps_moves_time() {
        let mut c = ctrl();
        let t0 = c.now_ps();
        c.advance_ps(1_000_000_000);
        assert_eq!(c.now_ps(), t0 + 1_000_000_000);
    }
}
