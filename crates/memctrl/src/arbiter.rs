//! Demand/TRNG arbitration — the duty-cycle integration of Section 7.3.
//!
//! The paper's proposed deployment alternates a channel between windows
//! with the default `tRCD` (serving application demand) and windows
//! with the reduced `tRCD` (harvesting random bits), and sizes the
//! windows to trade TRNG throughput against application slowdown. This
//! module simulates that arbitration at the command level: a synthetic
//! demand stream (from a [`WorkloadProfile`]) is served with priority,
//! and D-RaNGe accesses steal otherwise-idle command slots during
//! sampling windows.
//!
//! Random *bits* are not produced here (the device is not involved);
//! the simulation accounts time, latency, and harvest opportunities —
//! the quantities the paper reports — exactly as its Ramulator study
//! does.

use dram_sim::commands::CommandKind;
use dram_sim::TimingParams;

use crate::error::Result;
use crate::registers::TimingRegisters;
use crate::schedule::CommandScheduler;
use crate::workloads::WorkloadProfile;

/// Configuration of an arbitration simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbiterConfig {
    /// Simulated duration, ps.
    pub duration_ps: u64,
    /// Banks in the channel.
    pub banks: usize,
    /// Demand request rate, requests per microsecond (derived from the
    /// workload's MPKI by [`demand_rate_per_us`]).
    pub requests_per_us: f64,
    /// Row-buffer hit rate of the demand stream.
    pub row_hit_rate: f64,
    /// Length of each D-RaNGe sampling window, ps (0 disables TRNG).
    pub sample_window_ps: u64,
    /// Length of each demand-only window, ps.
    pub demand_window_ps: u64,
    /// Bits harvested per TRNG word access (RNG cells per word).
    pub bits_per_access: usize,
    /// Seed for the synthetic arrival process.
    pub seed: u64,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig {
            duration_ps: 50_000_000, // 50 us
            banks: 8,
            requests_per_us: 20.0,
            row_hit_rate: 0.5,
            sample_window_ps: 2_000_000,
            demand_window_ps: 2_000_000,
            bits_per_access: 3,
            seed: 1,
        }
    }
}

/// Demand rate for a workload on a 4-core 4 GHz system: LLC misses per
/// kilo-instruction × instructions per microsecond / 1000.
pub fn demand_rate_per_us(profile: &WorkloadProfile) -> f64 {
    // 4 cores x ~1.5 effective IPC x 4 GHz = 24 kilo-instructions/us;
    // requests/us = kilo-instructions/us x MPKI. Memory-bound workloads
    // would exceed what one channel can serve (~40 requests/us), at
    // which point the cores stall and the offered rate saturates.
    let kilo_instructions_per_us = 24.0;
    (profile.mpki * kilo_instructions_per_us).min(35.0)
}

/// Result of an arbitration simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbiterReport {
    /// Demand requests served.
    pub demand_served: u64,
    /// Mean demand latency (arrival to data), ps.
    pub mean_demand_latency_ps: f64,
    /// 95th-percentile demand latency, ps.
    pub p95_demand_latency_ps: u64,
    /// Random bits harvested.
    pub trng_bits: u64,
    /// TRNG throughput over the simulated duration, bits/s.
    pub trng_bps: f64,
}

struct Xorshift(u64);

impl Xorshift {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Simulates the arbitration and returns the report.
///
/// # Errors
///
/// Returns [`crate::MemError::InvalidRegister`] for a zero reduced
/// `tRCD` and propagates scheduler errors.
///
/// # Panics
///
/// Panics if `banks` is zero or the duration is zero.
pub fn simulate(
    timing: TimingParams,
    reduced_trcd_ps: u64,
    config: &ArbiterConfig,
) -> Result<ArbiterReport> {
    assert!(config.banks > 0 && config.duration_ps > 0);
    let mut rng = Xorshift(config.seed);

    // Pre-generate Poisson arrivals.
    let mut arrivals: Vec<u64> = Vec::new();
    let mut t = 0f64;
    let mean_gap_ps = if config.requests_per_us > 0.0 {
        1.0e6 / config.requests_per_us
    } else {
        f64::INFINITY
    };
    loop {
        let u = rng.next_f64().max(1e-12);
        t += -mean_gap_ps * u.ln();
        if t >= config.duration_ps as f64 {
            break;
        }
        arrivals.push(t as u64);
    }

    let mut sched = CommandScheduler::new(config.banks, timing);
    // The reduced parameters go through the register file so the same
    // legality checks cover them as any software-programmed tRCD.
    let mut registers = TimingRegisters::new(timing);
    registers.set_trcd_ps(reduced_trcd_ps)?;
    let reduced = registers.effective();

    let mut open_rows: Vec<Option<usize>> = vec![None; config.banks];
    let mut latencies: Vec<u64> = Vec::with_capacity(arrivals.len());
    let mut trng_bits = 0u64;
    let mut next_arrival = 0usize;
    let mut trng_row = 0usize;
    let period = (config.sample_window_ps + config.demand_window_ps).max(1);

    while sched.now_ps() < config.duration_ps {
        let now = sched.now_ps();
        // Serve pending demand first.
        if next_arrival < arrivals.len() && arrivals[next_arrival] <= now {
            let arrival = arrivals[next_arrival];
            next_arrival += 1;
            let bank = (rng.next_f64() * config.banks as f64) as usize % config.banks;
            let hit = rng.next_f64() < config.row_hit_rate;
            let row = if hit {
                open_rows[bank].unwrap_or(0)
            } else {
                trng_row + 100
            };
            // Demand runs at the safe, default timing.
            // xtask:allow(timing-writes) -- datasheet parameters from the register file
            sched.set_timing(registers.datasheet());
            if open_rows[bank] != Some(row) || !sched.is_open(bank) {
                if sched.is_open(bank) {
                    sched.issue(CommandKind::Pre, bank, 0, 0)?;
                }
                sched.issue(CommandKind::Act, bank, row, 0)?;
                open_rows[bank] = Some(row);
            }
            let rd = sched.issue(CommandKind::Rd, bank, row, 0)?;
            latencies.push(rd.at_ps + timing.tcl_ps + timing.tbl_ps - arrival.min(rd.at_ps));
            continue;
        }

        // No demand pending: harvest if we are inside a sampling window
        // AND the channel is expected to stay idle for a whole TRNG
        // word access (demand keeps strict priority; a queued request
        // never waits behind a TRNG chain).
        let chain_ps = reduced.trcd_ps
            + timing.tcl_ps
            + timing.tbl_ps
            + timing.twr_ps
            + timing.trp_ps
            + 4 * timing.tck_ps;
        let idle_long_enough = match arrivals.get(next_arrival) {
            Some(&a) => a > now + chain_ps,
            None => true,
        };
        let in_sample_window = config.sample_window_ps > 0
            && (now % period) < config.sample_window_ps
            && idle_long_enough;
        if in_sample_window {
            // One TRNG word access on bank 0's reserved rows with the
            // reduced tRCD.
            // xtask:allow(timing-writes) -- legality-checked effective parameters from the register file
            sched.set_timing(reduced);
            let bank = config.banks - 1;
            if sched.is_open(bank) {
                sched.issue(CommandKind::Pre, bank, 0, 0)?;
            }
            trng_row = (trng_row + 1) % 2;
            sched.issue(CommandKind::Act, bank, trng_row, 0)?;
            sched.issue(CommandKind::Rd, bank, trng_row, 0)?;
            sched.issue(CommandKind::Wr, bank, trng_row, 0)?;
            sched.issue(CommandKind::Pre, bank, 0, 0)?;
            open_rows[bank] = None;
            trng_bits += config.bits_per_access as u64;
            // xtask:allow(timing-writes) -- datasheet parameters from the register file
            sched.set_timing(registers.datasheet());
        } else if next_arrival < arrivals.len() {
            // Idle until the next arrival or the next window boundary.
            let next_boundary = (now / period + 1) * period;
            let target = arrivals[next_arrival].min(next_boundary);
            sched.advance(target.saturating_sub(now).max(1));
        } else if config.sample_window_ps > 0 {
            let next_boundary = (now / period + 1) * period;
            sched.advance(next_boundary.saturating_sub(now).max(1));
        } else {
            break; // nothing left to do
        }
    }

    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().map(|&l| l as f64).sum::<f64>() / latencies.len() as f64
    };
    let p95 = if latencies.is_empty() {
        0
    } else {
        let mut sorted = latencies.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 95 / 100]
    };
    Ok(ArbiterReport {
        demand_served: latencies.len() as u64,
        mean_demand_latency_ps: mean,
        p95_demand_latency_ps: p95,
        trng_bits,
        trng_bps: trng_bits as f64 / (config.duration_ps as f64 * 1e-12),
    })
}

/// Convenience: the slowdown of demand traffic caused by enabling the
/// TRNG windows, as `(with.mean / without.mean)`.
///
/// # Errors
///
/// Propagates [`simulate`] errors.
pub fn slowdown(timing: TimingParams, reduced_trcd_ps: u64, config: &ArbiterConfig) -> Result<f64> {
    let with = simulate(timing, reduced_trcd_ps, config)?;
    let without = simulate(
        timing,
        reduced_trcd_ps,
        &ArbiterConfig {
            sample_window_ps: 0,
            ..config.clone()
        },
    )?;
    Ok(if without.mean_demand_latency_ps == 0.0 {
        1.0
    } else {
        with.mean_demand_latency_ps / without.mean_demand_latency_ps
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::spec2006_suite;

    fn timing() -> TimingParams {
        TimingParams::lpddr4_3200()
    }

    #[test]
    fn trng_harvests_when_idle() {
        let config = ArbiterConfig {
            requests_per_us: 0.5,
            ..ArbiterConfig::default()
        };
        let r = simulate(timing(), 10_000, &config).unwrap();
        assert!(r.trng_bits > 0, "idle channel harvests bits");
        assert!(
            r.trng_bps > 1e6,
            "idle harvest at Mb/s scale: {}",
            r.trng_bps
        );
    }

    #[test]
    fn no_sampling_window_means_no_bits() {
        let config = ArbiterConfig {
            sample_window_ps: 0,
            ..ArbiterConfig::default()
        };
        let r = simulate(timing(), 10_000, &config).unwrap();
        assert_eq!(r.trng_bits, 0);
        assert!(r.demand_served > 0);
    }

    #[test]
    fn heavier_demand_reduces_trng_throughput() {
        let light = simulate(
            timing(),
            10_000,
            &ArbiterConfig {
                requests_per_us: 2.0,
                ..ArbiterConfig::default()
            },
        )
        .unwrap();
        let heavy = simulate(
            timing(),
            10_000,
            &ArbiterConfig {
                requests_per_us: 120.0,
                ..ArbiterConfig::default()
            },
        )
        .unwrap();
        assert!(
            heavy.trng_bits < light.trng_bits,
            "heavy {} light {}",
            heavy.trng_bits,
            light.trng_bits
        );
        assert!(heavy.demand_served > light.demand_served);
    }

    #[test]
    fn demand_priority_bounds_slowdown() {
        // Demand is always served before TRNG accesses, so the added
        // latency is at most one in-flight TRNG word access.
        let config = ArbiterConfig {
            requests_per_us: 40.0,
            ..ArbiterConfig::default()
        };
        let s = slowdown(timing(), 10_000, &config).unwrap();
        assert!(s < 1.5, "slowdown {s} must stay modest");
        assert!(s >= 0.95, "slowdown ratio sane: {s}");
    }

    #[test]
    fn window_sizing_trades_throughput() {
        let narrow = simulate(
            timing(),
            10_000,
            &ArbiterConfig {
                sample_window_ps: 500_000,
                demand_window_ps: 3_500_000,
                requests_per_us: 10.0,
                ..ArbiterConfig::default()
            },
        )
        .unwrap();
        let wide = simulate(
            timing(),
            10_000,
            &ArbiterConfig {
                sample_window_ps: 3_500_000,
                demand_window_ps: 500_000,
                requests_per_us: 10.0,
                ..ArbiterConfig::default()
            },
        )
        .unwrap();
        assert!(wide.trng_bits > narrow.trng_bits);
    }

    #[test]
    fn demand_rate_tracks_mpki() {
        let suite = spec2006_suite();
        let mcf = suite.iter().find(|w| w.name == "mcf").unwrap();
        let povray = suite.iter().find(|w| w.name == "povray").unwrap();
        assert!(demand_rate_per_us(mcf) > 10.0 * demand_rate_per_us(povray));
        assert!(demand_rate_per_us(mcf) <= 35.0, "offered rate saturates");
    }

    #[test]
    fn deterministic_given_seed() {
        let c = ArbiterConfig::default();
        let a = simulate(timing(), 10_000, &c).unwrap();
        let b = simulate(timing(), 10_000, &c).unwrap();
        assert_eq!(a, b);
    }
}
