//! # memctrl — command-level DRAM memory-controller model
//!
//! D-RaNGe runs "fully within the memory controller" (paper Section 6.3):
//! a firmware routine programs a reduced `tRCD` into the controller's
//! timing registers, drives the ACT/RD/WR/PRE command stream of
//! Algorithm 2, and reads the failing bits back. This crate provides
//! that controller for the [`dram_sim`] device model:
//!
//! * [`TimingRegisters`] — the software-visible timing registers,
//!   including the programmable `tRCD` the mechanism relies on.
//! * [`CommandScheduler`] — issues commands at the earliest legal clock
//!   edge under the JEDEC inter-command constraints (tRRD, tFAW, tCCD,
//!   tRAS, tRP, tRTP, tWR, tWTR, bus occupancy) and accounts cycles,
//!   playing the role Ramulator plays in the paper's throughput and
//!   energy evaluations.
//! * [`MemoryController`] — binds a scheduler to a [`dram_sim::DramDevice`],
//!   records command traces for the energy model, and exposes the
//!   high-level operations the D-RaNGe algorithms are written in.
//! * [`MemorySystem`] — a multi-channel system (the paper's
//!   4-channel throughput projections).
//! * [`workloads`] — synthetic SPEC CPU2006-like memory-intensity
//!   profiles for the idle-bandwidth interference study (Section 7.3).
//!
//! ## Example
//!
//! ```rust
//! use dram_sim::{DeviceConfig, Manufacturer};
//! use memctrl::MemoryController;
//!
//! # fn main() -> memctrl::Result<()> {
//! let mut ctrl = MemoryController::from_config(
//!     DeviceConfig::new(Manufacturer::A).with_seed(1).with_noise_seed(2),
//! );
//! ctrl.set_trcd_ns(10.0); // violate the datasheet: induce failures
//! ctrl.act(0, 7)?;
//! let word = ctrl.rd(0, 7, 3)?;
//! ctrl.pre(0)?;
//! ctrl.reset_trcd();
//! let _ = word;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod channel;
pub mod controller;
pub mod error;
pub mod refresh;
pub mod registers;
pub mod requests;
pub mod schedule;
pub mod workloads;

pub use channel::MemorySystem;
pub use controller::MemoryController;
pub use error::{MemError, Result};
pub use refresh::RefreshScheduler;
pub use registers::TimingRegisters;
pub use requests::{Completion, Request, RequestQueue};
pub use schedule::CommandScheduler;
pub use workloads::WorkloadProfile;
