//! Auto-refresh bookkeeping.
//!
//! JEDEC requires one REF per tREFI on average, but allows up to eight
//! refreshes to be postponed (and later made up) — the flexibility that
//! lets a controller keep a D-RaNGe sampling window open without
//! violating the refresh contract. This module tracks the refresh debt
//! and decides when a REF must be forced.

use dram_sim::TimingParams;

/// Maximum refreshes that may be postponed under JEDEC rules.
pub const MAX_POSTPONED: u32 = 8;

/// Refresh scheduler state for one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshScheduler {
    trefi_ps: u64,
    next_due_ps: u64,
    postponed: u32,
    issued: u64,
}

impl RefreshScheduler {
    /// A scheduler with the rank's average refresh interval.
    pub fn new(timing: TimingParams) -> Self {
        RefreshScheduler {
            trefi_ps: timing.trefi_ps,
            next_due_ps: timing.trefi_ps,
            postponed: 0,
            issued: 0,
        }
    }

    /// Whether a refresh is due at `now`.
    pub fn due(&self, now_ps: u64) -> bool {
        now_ps >= self.next_due_ps
    }

    /// Whether the controller **must** refresh now (postponement budget
    /// exhausted).
    pub fn must_refresh(&self, now_ps: u64) -> bool {
        self.due(now_ps) && self.postponed >= MAX_POSTPONED
    }

    /// Records an issued REF; pays down postponement debt first.
    pub fn on_refresh(&mut self) {
        self.issued += 1;
        if self.postponed > 0 {
            self.postponed -= 1;
        }
        self.next_due_ps += self.trefi_ps;
    }

    /// Postpones the refresh that is currently due.
    ///
    /// Returns `false` (and changes nothing) when the postponement
    /// budget is exhausted — the caller must refresh instead.
    pub fn postpone(&mut self, now_ps: u64) -> bool {
        if !self.due(now_ps) || self.postponed >= MAX_POSTPONED {
            return false;
        }
        self.postponed += 1;
        self.next_due_ps += self.trefi_ps;
        true
    }

    /// Currently postponed refreshes (the debt to pay down).
    pub fn postponed(&self) -> u32 {
        self.postponed
    }

    /// Total refreshes issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The longest sampling window (ps) the controller can hold open
    /// starting at `now` before a refresh becomes mandatory.
    pub fn window_until_forced(&self, now_ps: u64) -> u64 {
        let budget_refreshes = (MAX_POSTPONED - self.postponed) as u64;
        let forced_at = self.next_due_ps + budget_refreshes * self.trefi_ps;
        forced_at.saturating_sub(now_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> RefreshScheduler {
        RefreshScheduler::new(TimingParams::lpddr4_3200())
    }

    #[test]
    fn refresh_becomes_due_after_trefi() {
        let s = sched();
        let trefi = TimingParams::lpddr4_3200().trefi_ps;
        assert!(!s.due(trefi - 1));
        assert!(s.due(trefi));
        assert!(!s.must_refresh(trefi), "postponement budget available");
    }

    #[test]
    fn eight_postponements_then_forced() {
        let mut s = sched();
        let trefi = TimingParams::lpddr4_3200().trefi_ps;
        let mut now = trefi;
        for k in 0..MAX_POSTPONED {
            assert!(s.postpone(now), "postpone #{k}");
            now += trefi;
        }
        assert_eq!(s.postponed(), MAX_POSTPONED);
        assert!(s.due(now));
        assert!(s.must_refresh(now));
        assert!(!s.postpone(now), "ninth postponement refused");
    }

    #[test]
    fn refresh_pays_down_debt() {
        let mut s = sched();
        let trefi = TimingParams::lpddr4_3200().trefi_ps;
        assert!(s.postpone(trefi));
        assert_eq!(s.postponed(), 1);
        s.on_refresh();
        assert_eq!(s.postponed(), 0);
        assert_eq!(s.issued(), 1);
    }

    #[test]
    fn cannot_postpone_before_due() {
        let mut s = sched();
        assert!(!s.postpone(0));
        assert_eq!(s.postponed(), 0);
    }

    #[test]
    fn window_shrinks_with_debt() {
        let mut s = sched();
        let trefi = TimingParams::lpddr4_3200().trefi_ps;
        let fresh_window = s.window_until_forced(0);
        assert_eq!(fresh_window, trefi * (1 + MAX_POSTPONED as u64));
        assert!(s.postpone(trefi));
        assert!(s.postpone(2 * trefi));
        let indebted_window = s.window_until_forced(2 * trefi);
        assert!(indebted_window < fresh_window);
    }

    #[test]
    fn steady_state_refresh_rate_matches_trefi() {
        let mut s = sched();
        let trefi = TimingParams::lpddr4_3200().trefi_ps;
        let horizon = 100 * trefi;
        let mut now = 0u64;
        while now < horizon {
            if s.due(now) {
                s.on_refresh();
            }
            now += trefi / 4;
        }
        // ~one refresh per tREFI over the horizon.
        assert!(
            (s.issued() as i64 - 100).abs() <= 1,
            "issued {}",
            s.issued()
        );
    }
}
