//! Request-level front end: a read/write request queue with an
//! FR-FCFS (first-ready, first-come-first-served) scheduling policy —
//! the standard memory-controller organization the paper's
//! full-system integration slots into (Section 6.3: D-RaNGe's firmware
//! competes with "normal memory requests" whose handling this module
//! models).

use std::collections::VecDeque;

use crate::controller::MemoryController;
use crate::error::Result;

/// A demand memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Target bank.
    pub bank: usize,
    /// Target row.
    pub row: usize,
    /// Target column.
    pub col: usize,
    /// Write (with the given value) or read.
    pub write: Option<u64>,
    /// Arrival time, ps (used for latency accounting).
    pub arrival_ps: u64,
}

impl Request {
    /// A read request.
    pub fn read(bank: usize, row: usize, col: usize, arrival_ps: u64) -> Self {
        Request {
            bank,
            row,
            col,
            write: None,
            arrival_ps,
        }
    }

    /// A write request.
    pub fn write(bank: usize, row: usize, col: usize, value: u64, arrival_ps: u64) -> Self {
        Request {
            bank,
            row,
            col,
            write: Some(value),
            arrival_ps,
        }
    }
}

/// A completed request with its service latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request served.
    pub request: Request,
    /// Data returned (reads only).
    pub data: Option<u64>,
    /// Arrival-to-data latency, ps.
    pub latency_ps: u64,
}

/// FR-FCFS request queue over a [`MemoryController`].
///
/// Policy: among queued requests, row-buffer *hits* (requests to a
/// bank's currently-open row) are served first in arrival order; if
/// none hits, the oldest request is served (closing/opening rows as
/// needed). This is the textbook FR-FCFS of Rixner et al. that the
/// paper's scheduling citations build on.
#[derive(Debug)]
pub struct RequestQueue {
    queue: VecDeque<Request>,
    /// Tracks each bank's open row according to issued commands.
    open_rows: Vec<Option<usize>>,
}

impl RequestQueue {
    /// An empty queue for a controller with `banks` banks.
    pub fn new(banks: usize) -> Self {
        RequestQueue {
            queue: VecDeque::new(),
            open_rows: vec![None; banks],
        }
    }

    /// Enqueues a request.
    pub fn push(&mut self, request: Request) {
        self.queue.push_back(request);
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Picks the next request index per FR-FCFS.
    fn pick(&self) -> Option<usize> {
        // First-ready: oldest row hit.
        if let Some(idx) = self
            .queue
            .iter()
            .position(|r| self.open_rows[r.bank] == Some(r.row))
        {
            return Some(idx);
        }
        // Else: oldest overall.
        if self.queue.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    /// Serves one request (if any) through the controller, returning
    /// its completion.
    ///
    /// # Errors
    ///
    /// Propagates controller errors; on error the request is dropped
    /// from the queue (the caller decides whether to retry).
    pub fn service_one(&mut self, ctrl: &mut MemoryController) -> Result<Option<Completion>> {
        let Some(idx) = self.pick() else {
            return Ok(None);
        };
        let Some(request) = self.queue.remove(idx) else {
            return Ok(None);
        };
        // Row management.
        if self.open_rows[request.bank] != Some(request.row) {
            if self.open_rows[request.bank].is_some() {
                ctrl.pre(request.bank)?;
            }
            ctrl.act(request.bank, request.row)?;
            self.open_rows[request.bank] = Some(request.row);
        }
        let data = match request.write {
            Some(value) => {
                ctrl.wr(request.bank, request.row, request.col, value)?;
                None
            }
            None => Some(ctrl.rd(request.bank, request.row, request.col)?),
        };
        let done_ps = ctrl.now_ps()
            + if request.write.is_some() {
                ctrl.registers().datasheet().tcwl_ps
            } else {
                ctrl.registers().datasheet().tcl_ps
            }
            + ctrl.registers().datasheet().tbl_ps;
        Ok(Some(Completion {
            request,
            data,
            latency_ps: done_ps.saturating_sub(request.arrival_ps),
        }))
    }

    /// Drains the whole queue, returning completions in service order.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn drain(&mut self, ctrl: &mut MemoryController) -> Result<Vec<Completion>> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(c) = self.service_one(ctrl)? {
            out.push(c);
        }
        // Close any rows we left open so the controller returns to a
        // neutral state.
        for bank in 0..self.open_rows.len() {
            if self.open_rows[bank].is_some() {
                ctrl.pre(bank)?;
                self.open_rows[bank] = None;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DeviceConfig, Manufacturer};

    fn ctrl() -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(61)
                .with_noise_seed(62),
        )
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut c = ctrl();
        let mut q = RequestQueue::new(8);
        q.push(Request::write(0, 5, 3, 0xABCD, 0));
        q.push(Request::read(0, 5, 3, 0));
        let done = q.drain(&mut c).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].data, Some(0xABCD));
        assert!(q.is_empty());
    }

    #[test]
    fn row_hits_are_served_first() {
        let mut c = ctrl();
        let mut q = RequestQueue::new(8);
        // Open row 1 via the first request; then queue a row-2 request
        // (older) and a row-1 hit (younger): the hit goes first.
        q.push(Request::read(0, 1, 0, 0));
        let first = q.service_one(&mut c).unwrap().unwrap();
        assert_eq!(first.request.row, 1);
        q.push(Request::read(0, 2, 0, 10));
        q.push(Request::read(0, 1, 4, 20));
        let second = q.service_one(&mut c).unwrap().unwrap();
        assert_eq!(second.request.row, 1, "row hit bypasses the older miss");
        assert_eq!(second.request.col, 4);
        let third = q.service_one(&mut c).unwrap().unwrap();
        assert_eq!(third.request.row, 2);
        let _ = q.drain(&mut c).unwrap();
    }

    #[test]
    fn row_hits_have_lower_latency() {
        let mut c = ctrl();
        let mut q = RequestQueue::new(8);
        q.push(Request::read(0, 1, 0, 0));
        let miss = q.service_one(&mut c).unwrap().unwrap();
        let t = c.now_ps();
        q.push(Request::read(0, 1, 1, t));
        let hit = q.service_one(&mut c).unwrap().unwrap();
        assert!(
            hit.latency_ps < miss.latency_ps,
            "hit {} vs miss {}",
            hit.latency_ps,
            miss.latency_ps
        );
        let _ = q.drain(&mut c).unwrap();
    }

    #[test]
    fn empty_queue_services_nothing() {
        let mut c = ctrl();
        let mut q = RequestQueue::new(8);
        assert!(q.service_one(&mut c).unwrap().is_none());
        assert!(q.drain(&mut c).unwrap().is_empty());
    }

    #[test]
    fn drain_closes_open_rows() {
        let mut c = ctrl();
        let mut q = RequestQueue::new(8);
        q.push(Request::read(3, 7, 0, 0));
        let _ = q.drain(&mut c).unwrap();
        assert_eq!(c.device().open_row(3), None, "drain precharges");
        // The controller is reusable afterwards.
        c.act(3, 9).unwrap();
        c.pre(3).unwrap();
    }

    #[test]
    fn banks_interleave() {
        let mut c = ctrl();
        let mut q = RequestQueue::new(8);
        for bank in 0..8 {
            q.push(Request::read(bank, bank + 1, 0, 0));
        }
        let done = q.drain(&mut c).unwrap();
        assert_eq!(done.len(), 8);
        let banks: std::collections::HashSet<_> = done.iter().map(|d| d.request.bank).collect();
        assert_eq!(banks.len(), 8);
    }
}
