//! Memory-controller errors.

use std::fmt;

use dram_sim::DramError;

/// Convenience alias for `Result<T, MemError>`.
pub type Result<T> = std::result::Result<T, MemError>;

/// Errors raised by the memory controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The underlying device rejected the operation.
    Device(DramError),
    /// The scheduler was asked for a command that is illegal in the
    /// current bank state (e.g. RD to a closed bank).
    IllegalCommand {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A timing register was programmed with an invalid value.
    InvalidRegister {
        /// Name of the register.
        register: &'static str,
        /// Description of why the value is invalid.
        reason: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Device(e) => write!(f, "device error: {e}"),
            MemError::IllegalCommand { reason } => write!(f, "illegal command: {reason}"),
            MemError::InvalidRegister { register, reason } => {
                write!(f, "invalid value for register {register}: {reason}")
            }
        }
    }
}

impl std::error::Error for MemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for MemError {
    fn from(e: DramError) -> Self {
        MemError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_device_error_with_source() {
        use std::error::Error;
        let e = MemError::from(DramError::BankNotOpen { bank: 2 });
        assert!(e.to_string().contains("bank 2"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }

    #[test]
    fn display_mentions_register_name() {
        let e = MemError::InvalidRegister {
            register: "tRCD",
            reason: "zero".into(),
        };
        assert!(e.to_string().contains("tRCD"));
    }
}
