//! Synthetic SPEC CPU2006-like workload profiles.
//!
//! The paper estimates how much random-number throughput D-RaNGe can
//! sustain *without slowing applications down* by measuring the idle
//! DRAM bandwidth left over by SPEC CPU2006 workloads (Section 7.3,
//! "Low System Interference": average 83.1, min 49.1, max 98.3 Mb/s).
//! SPEC traces are not redistributable, so this module models each
//! workload by its well-known last-level-cache miss intensity (MPKI) and
//! row-buffer locality, and derives DRAM bus utilization from a
//! saturating contention law. The numbers that matter downstream are the
//! *idle fractions*, which span the same range the paper reports.

use serde::{Deserialize, Serialize};

/// Fraction of DRAM time consumed by refresh overhead (tRFC / tREFI).
pub const REFRESH_OVERHEAD: f64 = 0.046;

/// Memory-intensity profile of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name (SPEC CPU2006 benchmark).
    pub name: &'static str,
    /// Last-level-cache misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of DRAM accesses that hit an open row.
    pub row_hit_rate: f64,
}

impl WorkloadProfile {
    /// Constructs a profile.
    ///
    /// # Panics
    ///
    /// Panics if `mpki` is negative or `row_hit_rate` outside `[0,1]`.
    pub fn new(name: &'static str, mpki: f64, row_hit_rate: f64) -> Self {
        assert!(mpki >= 0.0, "mpki must be nonnegative");
        assert!((0.0..=1.0).contains(&row_hit_rate), "row_hit_rate in [0,1]");
        WorkloadProfile {
            name,
            mpki,
            row_hit_rate,
        }
    }

    /// DRAM data-bus utilization of this workload on a 4-core system:
    /// a saturating function of MPKI, discounted by row-buffer locality
    /// (row misses occupy the banks longer).
    pub fn dram_utilization(&self) -> f64 {
        let base = self.mpki / (self.mpki + 25.0) * 0.62;
        let locality_penalty = 1.0 + 0.35 * (1.0 - self.row_hit_rate);
        (base * locality_penalty).min(0.85)
    }

    /// Fraction of DRAM time idle and available to D-RaNGe, after the
    /// workload's demand traffic and refresh overhead.
    pub fn idle_fraction(&self) -> f64 {
        (1.0 - self.dram_utilization() - REFRESH_OVERHEAD).max(0.0)
    }
}

impl std::fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (MPKI {:.1})", self.name, self.mpki)
    }
}

/// Twelve SPEC CPU2006 workloads spanning the memory-intensity range,
/// with representative LLC MPKI and row-hit rates from the
/// characterization literature.
pub fn spec2006_suite() -> Vec<WorkloadProfile> {
    vec![
        WorkloadProfile::new("mcf", 67.0, 0.25),
        WorkloadProfile::new("lbm", 50.1, 0.70),
        WorkloadProfile::new("libquantum", 50.0, 0.92),
        WorkloadProfile::new("milc", 29.3, 0.55),
        WorkloadProfile::new("soplex", 26.9, 0.60),
        WorkloadProfile::new("omnetpp", 21.5, 0.30),
        WorkloadProfile::new("gcc", 10.3, 0.50),
        WorkloadProfile::new("bzip2", 5.8, 0.65),
        WorkloadProfile::new("h264ref", 2.1, 0.75),
        WorkloadProfile::new("sjeng", 1.1, 0.40),
        WorkloadProfile::new("perlbench", 0.8, 0.60),
        WorkloadProfile::new("povray", 0.1, 0.80),
    ]
}

/// Summary of idle-bandwidth statistics over a workload set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleStats {
    /// Mean idle fraction.
    pub mean: f64,
    /// Minimum idle fraction (most memory-intensive workload).
    pub min: f64,
    /// Maximum idle fraction (least memory-intensive workload).
    pub max: f64,
}

/// Computes idle-fraction statistics over a set of workloads.
///
/// # Panics
///
/// Panics if `workloads` is empty.
pub fn idle_stats(workloads: &[WorkloadProfile]) -> IdleStats {
    assert!(!workloads.is_empty(), "need at least one workload");
    let fracs: Vec<f64> = workloads.iter().map(|w| w.idle_fraction()).collect();
    let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
    let min = fracs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = fracs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    IdleStats { mean, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_distinct_workloads() {
        let suite = spec2006_suite();
        assert_eq!(suite.len(), 12);
        let names: std::collections::HashSet<_> = suite.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn utilization_increases_with_mpki() {
        let low = WorkloadProfile::new("low", 1.0, 0.6);
        let high = WorkloadProfile::new("high", 60.0, 0.6);
        assert!(high.dram_utilization() > low.dram_utilization());
    }

    #[test]
    fn poor_locality_costs_bandwidth() {
        let local = WorkloadProfile::new("local", 30.0, 0.9);
        let scattered = WorkloadProfile::new("scattered", 30.0, 0.2);
        assert!(scattered.dram_utilization() > local.dram_utilization());
    }

    #[test]
    fn idle_fractions_span_paper_range() {
        // Paper: min/avg/max TRNG throughput under SPEC is 49.1/83.1/98.3
        // Mb/s against an unconstrained ~108.9 Mb/s, i.e. idle fractions
        // of roughly 0.45/0.76/0.90.
        let stats = idle_stats(&spec2006_suite());
        assert!(stats.min > 0.3 && stats.min < 0.6, "min idle {}", stats.min);
        assert!(
            stats.mean > 0.6 && stats.mean < 0.9,
            "mean idle {}",
            stats.mean
        );
        assert!(
            stats.max > 0.85 && stats.max < 0.99,
            "max idle {}",
            stats.max
        );
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    }

    #[test]
    fn mcf_is_the_most_intensive() {
        let suite = spec2006_suite();
        let min = suite
            .iter()
            .min_by(|a, b| a.idle_fraction().partial_cmp(&b.idle_fraction()).unwrap())
            .unwrap();
        assert_eq!(min.name, "mcf");
    }

    #[test]
    #[should_panic(expected = "row_hit_rate")]
    fn bad_row_hit_rate_panics() {
        let _ = WorkloadProfile::new("x", 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_stats_panics() {
        let _ = idle_stats(&[]);
    }

    #[test]
    fn display_mentions_name() {
        assert!(spec2006_suite()[0].to_string().contains("mcf"));
    }
}
