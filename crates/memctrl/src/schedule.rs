//! Command scheduler: issues DRAM commands at the earliest legal clock
//! edge and accounts time — the role Ramulator plays in the paper's
//! throughput evaluation (Equation 1 uses the runtime of Algorithm 2's
//! core loop under real command-timing constraints).
//!
//! Enforced constraints:
//!
//! | Constraint | Between |
//! |---|---|
//! | `tRP`   | PRE → ACT, same bank |
//! | `tRRD`  | ACT → ACT, any banks |
//! | `tFAW`  | any 5 ACTs (at most 4 per window) |
//! | `tRCD`* | ACT → RD/WR, same bank (*programmed value) |
//! | `tCCD`  | RD/WR → RD/WR |
//! | `tRTP`  | RD → PRE, same bank |
//! | `tWR`   | end of WR data → PRE, same bank |
//! | `tWTR`  | end of WR data → RD |
//! | `tRAS`  | ACT → PRE, same bank |
//! | RTW     | RD → WR bus turnaround |
//! | bus     | one data burst at a time; one command per clock |
//!
//! The scheduler also charges a per-command firmware overhead
//! (configurable through [`crate::TimingRegisters`]) modeling the
//! controller routine that drives the sampling loop.

use std::collections::VecDeque;

use dram_sim::commands::{Command, CommandKind};
use dram_sim::TimingParams;

use crate::error::{MemError, Result};

#[derive(Debug, Clone, Copy, Default)]
struct BankTiming {
    open: bool,
    act_at: u64,
    pre_issued_at: u64,
    last_rd_at: u64,
    wr_data_end: u64,
    has_history: bool,
}

/// Division-free round-up-to-clock-edge.
///
/// The scheduler issues three to four commands per harvested word and
/// the `u64` division inside [`TimingParams::to_clock_ps`] was one of
/// the largest single costs on the sampling hot path. `ClockRound`
/// precomputes `⌊2⁶⁴ / tck⌋` once per timing reprogram and replaces
/// the division with a 128-bit multiply plus a bounded fixup — exact
/// (`ps.div_ceil(tck) * tck`) for every `u64` input: the reciprocal
/// estimate undershoots the true quotient by at most
/// `ps·(2⁶⁴/tck − inv)/2⁶⁴ < ps/2⁶⁴ + 1 < 2`, so the fixup loop runs
/// at most twice.
#[derive(Debug, Clone, Copy)]
struct ClockRound {
    tck_ps: u64,
    /// `⌊2⁶⁴ / tck_ps⌋`.
    inv: u128,
}

impl ClockRound {
    fn new(tck_ps: u64) -> Self {
        // tck 0 would make every command instantaneous; treat it as 1
        // (identity rounding), matching div_ceil-by-1.
        let d = tck_ps.max(1);
        ClockRound {
            tck_ps: d,
            inv: (1u128 << 64) / u128::from(d),
        }
    }

    /// `ps.div_ceil(self.tck_ps) * self.tck_ps` without a division.
    #[inline]
    fn round_up(&self, ps: u64) -> u64 {
        let d = self.tck_ps;
        let mut q = ((u128::from(ps) * self.inv) >> 64) as u64;
        while (u128::from(q) + 1) * u128::from(d) <= u128::from(ps) {
            q += 1;
        }
        let floor = q * d;
        if floor == ps {
            ps
        } else {
            floor + d
        }
    }
}

/// Issues commands at the earliest legal time and tracks the clock.
#[derive(Debug, Clone)]
pub struct CommandScheduler {
    timing: TimingParams,
    clock: ClockRound,
    overhead_ps: u64,
    now_ps: u64,
    banks: Vec<BankTiming>,
    act_history: VecDeque<u64>,
    last_act_any: Option<u64>,
    last_col: Option<(CommandKind, u64)>,
    bus_free_at: u64,
}

impl CommandScheduler {
    /// A scheduler for `banks` banks under the given timing parameters.
    pub fn new(banks: usize, timing: TimingParams) -> Self {
        CommandScheduler {
            timing,
            clock: ClockRound::new(timing.tck_ps),
            overhead_ps: 0,
            now_ps: 0,
            banks: vec![BankTiming::default(); banks],
            act_history: VecDeque::with_capacity(4),
            last_act_any: None,
            last_col: None,
            bus_free_at: 0,
        }
    }

    /// Replaces the effective timing parameters (register reprogram).
    pub fn set_timing(&mut self, timing: TimingParams) {
        self.timing = timing;
        self.clock = ClockRound::new(timing.tck_ps);
    }

    /// The effective timing parameters in force.
    pub fn timing(&self) -> TimingParams {
        self.timing
    }

    /// Sets the per-command firmware overhead.
    pub fn set_overhead_ps(&mut self, ps: u64) {
        self.overhead_ps = ps;
    }

    /// Current time: the issue instant of the last command, ps.
    pub fn now_ps(&self) -> u64 {
        self.now_ps
    }

    /// Advances the clock without issuing commands (refresh pauses,
    /// host-side delays).
    pub fn advance(&mut self, ps: u64) {
        self.now_ps += ps;
    }

    /// Whether a bank currently has an open row (scheduler's view).
    pub fn is_open(&self, bank: usize) -> bool {
        self.banks.get(bank).is_some_and(|b| b.open)
    }

    fn bank(&self, bank: usize) -> Result<&BankTiming> {
        self.banks
            .get(bank)
            .ok_or_else(|| MemError::IllegalCommand {
                reason: format!("bank {bank} out of range"),
            })
    }

    /// Earliest legal issue time for a command, given current history.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::IllegalCommand`] when the command is illegal
    /// in the current bank state regardless of timing (e.g. RD to a
    /// closed bank).
    pub fn earliest(&self, kind: CommandKind, bank: usize) -> Result<u64> {
        let t = &self.timing;
        let b = self.bank(bank)?;
        // Command bus: one command per clock, plus firmware overhead.
        let mut at = self.now_ps + self.timing.tck_ps.max(self.overhead_ps);
        match kind {
            CommandKind::Act => {
                if b.open {
                    return Err(MemError::IllegalCommand {
                        reason: format!("ACT to open bank {bank}"),
                    });
                }
                if b.has_history {
                    at = at.max(b.pre_issued_at + t.trp_ps);
                }
                if let Some(last) = self.last_act_any {
                    at = at.max(last + t.trrd_ps);
                }
                if self.act_history.len() == 4 {
                    at = at.max(self.act_history[0] + t.tfaw_ps);
                }
            }
            CommandKind::Rd | CommandKind::Wr => {
                if !b.open {
                    return Err(MemError::IllegalCommand {
                        reason: format!("{kind} to closed bank {bank}"),
                    });
                }
                at = at.max(b.act_at + t.trcd_ps);
                if let Some((prev_kind, prev_at)) = self.last_col {
                    at = at.max(prev_at + t.tccd_ps);
                    match (prev_kind, kind) {
                        (CommandKind::Wr, CommandKind::Rd) => {
                            // tWTR from end of write data (any bank).
                            let wr_end =
                                self.banks.iter().map(|b| b.wr_data_end).max().unwrap_or(0);
                            at = at.max(wr_end + t.twtr_ps);
                        }
                        (CommandKind::Rd, CommandKind::Wr) => {
                            // Read-to-write turnaround: the write burst
                            // must start after the read burst clears the
                            // bus (plus one clock of turnaround).
                            let rtw = prev_at + t.tcl_ps + t.tbl_ps + t.tck_ps;
                            at = at.max(rtw.saturating_sub(t.tcwl_ps));
                        }
                        _ => {}
                    }
                }
                // Data-bus occupancy.
                let data_lat = if kind == CommandKind::Rd {
                    t.tcl_ps
                } else {
                    t.tcwl_ps
                };
                at = at.max(self.bus_free_at.saturating_sub(data_lat));
            }
            CommandKind::Pre => {
                if !b.open {
                    return Err(MemError::IllegalCommand {
                        reason: format!("PRE to closed bank {bank}"),
                    });
                }
                at = at.max(b.act_at + t.tras_ps);
                if b.last_rd_at > 0 {
                    at = at.max(b.last_rd_at + t.trtp_ps);
                }
                if b.wr_data_end > 0 {
                    at = at.max(b.wr_data_end + t.twr_ps);
                }
            }
            CommandKind::Ref => {
                if self.banks.iter().any(|b| b.open) {
                    return Err(MemError::IllegalCommand {
                        reason: "REF with open banks".into(),
                    });
                }
                for b in &self.banks {
                    if b.has_history {
                        at = at.max(b.pre_issued_at + t.trp_ps);
                    }
                }
            }
        }
        // Same value as `t.to_clock_ps(at)`, division-free.
        Ok(self.clock.round_up(at))
    }

    /// Issues a command at its earliest legal time, updating the clock
    /// and all timing history. Returns the stamped command.
    ///
    /// # Errors
    ///
    /// Propagates the legality errors of [`CommandScheduler::earliest`].
    pub fn issue(
        &mut self,
        kind: CommandKind,
        bank: usize,
        row: usize,
        col: usize,
    ) -> Result<Command> {
        let at = self.earliest(kind, bank)?;
        let t = self.timing;
        let b = &mut self.banks[bank];
        match kind {
            CommandKind::Act => {
                b.open = true;
                b.act_at = at;
                b.last_rd_at = 0;
                b.wr_data_end = 0;
                b.has_history = true;
                self.last_act_any = Some(at);
                self.act_history.push_back(at);
                if self.act_history.len() > 4 {
                    self.act_history.pop_front();
                }
            }
            CommandKind::Rd => {
                b.last_rd_at = at;
                self.last_col = Some((CommandKind::Rd, at));
                self.bus_free_at = at + t.tcl_ps + t.tbl_ps;
            }
            CommandKind::Wr => {
                b.wr_data_end = at + t.tcwl_ps + t.tbl_ps;
                self.last_col = Some((CommandKind::Wr, at));
                self.bus_free_at = at + t.tcwl_ps + t.tbl_ps;
            }
            CommandKind::Pre => {
                b.open = false;
                b.pre_issued_at = at;
            }
            CommandKind::Ref => {
                // REF occupies the device for tRFC.
                self.now_ps = at + t.trfc_ps;
                return Ok(Command::refresh(at));
            }
        }
        self.now_ps = at;
        Ok(match kind {
            CommandKind::Act => Command::act(bank, row, at),
            CommandKind::Rd => Command::rd(bank, row, col, at),
            CommandKind::Wr => Command::wr(bank, row, col, at),
            CommandKind::Pre => Command::pre(bank, at),
            // Already returned above; kept symmetric so this match
            // stays total without a panic path.
            CommandKind::Ref => Command::refresh(at),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> CommandScheduler {
        CommandScheduler::new(8, TimingParams::lpddr4_3200())
    }

    #[test]
    fn act_rd_respects_trcd() {
        let mut s = sched();
        let act = s.issue(CommandKind::Act, 0, 5, 0).unwrap();
        let rd = s.issue(CommandKind::Rd, 0, 5, 0).unwrap();
        assert!(rd.at_ps >= act.at_ps + s.timing().trcd_ps);
    }

    #[test]
    fn programmed_trcd_shrinks_act_to_rd() {
        let mut fast = sched();
        let t = TimingParams {
            trcd_ps: 10_000,
            ..TimingParams::lpddr4_3200()
        };
        fast.set_timing(t);
        let act = fast.issue(CommandKind::Act, 0, 5, 0).unwrap();
        let rd = fast.issue(CommandKind::Rd, 0, 5, 0).unwrap();
        assert_eq!(rd.at_ps - act.at_ps, 10_000);
    }

    #[test]
    fn rd_to_closed_bank_is_illegal() {
        let mut s = sched();
        assert!(matches!(
            s.issue(CommandKind::Rd, 0, 0, 0),
            Err(MemError::IllegalCommand { .. })
        ));
        assert!(matches!(
            s.issue(CommandKind::Pre, 0, 0, 0),
            Err(MemError::IllegalCommand { .. })
        ));
    }

    #[test]
    fn double_act_is_illegal() {
        let mut s = sched();
        s.issue(CommandKind::Act, 0, 1, 0).unwrap();
        assert!(s.issue(CommandKind::Act, 0, 2, 0).is_err());
    }

    #[test]
    fn pre_respects_tras_and_trp() {
        let mut s = sched();
        let act = s.issue(CommandKind::Act, 0, 1, 0).unwrap();
        let pre = s.issue(CommandKind::Pre, 0, 0, 0).unwrap();
        assert!(pre.at_ps >= act.at_ps + s.timing().tras_ps);
        let act2 = s.issue(CommandKind::Act, 0, 2, 0).unwrap();
        assert!(act2.at_ps >= pre.at_ps + s.timing().trp_ps);
    }

    #[test]
    fn trrd_between_different_banks() {
        let mut s = sched();
        let a0 = s.issue(CommandKind::Act, 0, 1, 0).unwrap();
        let a1 = s.issue(CommandKind::Act, 1, 1, 0).unwrap();
        assert!(a1.at_ps >= a0.at_ps + s.timing().trrd_ps);
    }

    #[test]
    fn tfaw_limits_act_rate() {
        let mut s = sched();
        let times: Vec<u64> = (0..5)
            .map(|b| s.issue(CommandKind::Act, b, 0, 0).unwrap().at_ps)
            .collect();
        // The 5th ACT must wait out the 4-activate window.
        assert!(
            times[4] >= times[0] + s.timing().tfaw_ps,
            "5th ACT at {} vs first {} + tFAW {}",
            times[4],
            times[0],
            s.timing().tfaw_ps
        );
    }

    #[test]
    fn tccd_between_column_commands() {
        let mut s = sched();
        s.issue(CommandKind::Act, 0, 0, 0).unwrap();
        let r1 = s.issue(CommandKind::Rd, 0, 0, 0).unwrap();
        let r2 = s.issue(CommandKind::Rd, 0, 0, 1).unwrap();
        assert!(r2.at_ps >= r1.at_ps + s.timing().tccd_ps);
    }

    #[test]
    fn write_then_pre_waits_twr() {
        let mut s = sched();
        s.issue(CommandKind::Act, 0, 0, 0).unwrap();
        let w = s.issue(CommandKind::Wr, 0, 0, 0).unwrap();
        let pre = s.issue(CommandKind::Pre, 0, 0, 0).unwrap();
        let t = s.timing();
        assert!(pre.at_ps >= w.at_ps + t.tcwl_ps + t.tbl_ps + t.twr_ps);
    }

    #[test]
    fn write_to_read_waits_twtr() {
        let mut s = sched();
        s.issue(CommandKind::Act, 0, 0, 0).unwrap();
        s.issue(CommandKind::Act, 1, 0, 0).unwrap();
        let w = s.issue(CommandKind::Wr, 0, 0, 0).unwrap();
        let r = s.issue(CommandKind::Rd, 1, 0, 0).unwrap();
        let t = s.timing();
        assert!(r.at_ps >= w.at_ps + t.tcwl_ps + t.tbl_ps + t.twtr_ps);
    }

    #[test]
    fn read_to_write_turnaround() {
        let mut s = sched();
        s.issue(CommandKind::Act, 0, 0, 0).unwrap();
        let r = s.issue(CommandKind::Rd, 0, 0, 0).unwrap();
        let w = s.issue(CommandKind::Wr, 0, 0, 1).unwrap();
        let t = s.timing();
        // Write data must start after the read burst leaves the bus.
        assert!(w.at_ps + t.tcwl_ps >= r.at_ps + t.tcl_ps + t.tbl_ps);
    }

    #[test]
    fn refresh_requires_all_banks_closed_and_blocks() {
        let mut s = sched();
        s.issue(CommandKind::Act, 3, 0, 0).unwrap();
        assert!(s.issue(CommandKind::Ref, 0, 0, 0).is_err());
        s.issue(CommandKind::Pre, 3, 0, 0).unwrap();
        let before = s.now_ps();
        let r = s.issue(CommandKind::Ref, 0, 0, 0).unwrap();
        assert!(s.now_ps() >= r.at_ps + s.timing().trfc_ps);
        assert!(s.now_ps() > before);
    }

    #[test]
    fn commands_are_clock_aligned() {
        let mut s = sched();
        for b in 0..4 {
            let c = s.issue(CommandKind::Act, b, 0, 0).unwrap();
            assert_eq!(c.at_ps % s.timing().tck_ps, 0);
        }
    }

    #[test]
    fn overhead_spaces_commands() {
        let mut s = sched();
        s.set_overhead_ps(5_000);
        let a = s.issue(CommandKind::Act, 0, 0, 0).unwrap();
        let b = s.issue(CommandKind::Act, 1, 0, 0).unwrap();
        assert!(b.at_ps >= a.at_ps + 5_000);
    }

    #[test]
    fn advance_moves_clock() {
        let mut s = sched();
        s.advance(1_000_000);
        assert!(s.now_ps() >= 1_000_000);
        let c = s.issue(CommandKind::Act, 0, 0, 0).unwrap();
        assert!(c.at_ps > 1_000_000);
    }

    #[test]
    fn time_never_goes_backwards() {
        let mut s = sched();
        let mut last = 0;
        for i in 0..50 {
            let bank = i % 8;
            if s.is_open(bank) {
                let r = s.issue(CommandKind::Rd, bank, 0, 0).unwrap();
                assert!(r.at_ps >= last);
                last = r.at_ps;
                let p = s.issue(CommandKind::Pre, bank, 0, 0).unwrap();
                assert!(p.at_ps >= last);
                last = p.at_ps;
            } else {
                let a = s.issue(CommandKind::Act, bank, 0, 0).unwrap();
                assert!(a.at_ps >= last);
                last = a.at_ps;
            }
        }
    }

    #[test]
    fn bank_out_of_range_is_illegal() {
        let mut s = sched();
        assert!(s.issue(CommandKind::Act, 99, 0, 0).is_err());
    }

    #[test]
    fn clock_round_matches_div_ceil_exactly() {
        // The division-free rounder must agree with
        // `TimingParams::to_clock_ps` (`div_ceil * tck`) on every input,
        // or command timestamps would drift from the recorded baselines.
        let tcks = [1u64, 2, 3, 5, 416, 625, 938, 1_000, 1_250, 65_537];
        for &tck in &tcks {
            let r = ClockRound::new(tck);
            let mut t = TimingParams::lpddr4_3200();
            t.tck_ps = tck;
            // Clock-edge neighborhoods plus a multiplicative sweep to
            // cover large magnitudes.
            for k in 0..2_000u64 {
                let edge = k * tck;
                for ps in edge.saturating_sub(2)..=edge + 2 {
                    assert_eq!(r.round_up(ps), t.to_clock_ps(ps), "tck {tck} ps {ps}");
                }
            }
            let mut ps = 1u64;
            while ps < u64::MAX / 2 {
                for probe in [ps - 1, ps, ps + 1] {
                    assert_eq!(
                        r.round_up(probe),
                        probe.div_ceil(tck) * tck,
                        "tck {tck} ps {probe}"
                    );
                }
                ps = ps.wrapping_mul(3).wrapping_add(7);
            }
        }
    }

    #[test]
    fn clock_round_zero_tck_is_identity() {
        let r = ClockRound::new(0);
        for ps in [0u64, 1, 17, 1 << 40] {
            assert_eq!(r.round_up(ps), ps);
        }
    }
}
