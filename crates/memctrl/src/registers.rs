//! Software-visible timing registers.
//!
//! The paper's low-implementation-cost argument (Section 7.3) rests on
//! memory controllers whose timing parameters live in programmable
//! registers — some processors already expose them to software. This
//! module models that register file: it starts from the datasheet
//! [`dram_sim::TimingParams`] and lets software override `tRCD` (and the
//! firmware overhead) at run time.

use dram_sim::timing::PS_PER_NS;
use dram_sim::TimingParams;

use crate::error::{MemError, Result};

/// The controller's programmable timing register file.
///
/// Only `tRCD` is programmable here because it is the parameter D-RaNGe
/// manipulates; every other field is carried through from the datasheet
/// parameters. `cmd_overhead_ps` models the firmware/controller
/// processing time between dependent commands of the sampling routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingRegisters {
    datasheet: TimingParams,
    trcd_ps: u64,
    cmd_overhead_ps: u64,
}

impl TimingRegisters {
    /// Registers initialized from datasheet values.
    pub fn new(datasheet: TimingParams) -> Self {
        TimingRegisters {
            datasheet,
            trcd_ps: datasheet.trcd_ps,
            // Firmware dispatch cost per issued command in the sampling
            // routine (Section 6.3's "simple firmware routine").
            cmd_overhead_ps: 2_500,
        }
    }

    /// The datasheet parameters these registers started from.
    pub fn datasheet(&self) -> TimingParams {
        self.datasheet
    }

    /// The currently programmed `tRCD`, ps.
    #[inline]
    pub fn trcd_ps(&self) -> u64 {
        self.trcd_ps
    }

    /// The currently programmed `tRCD`, ns.
    #[inline]
    pub fn trcd_ns(&self) -> f64 {
        self.trcd_ps as f64 / PS_PER_NS as f64
    }

    /// Programs `tRCD` (possibly below the datasheet value — the
    /// violation D-RaNGe exploits).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidRegister`] if the value is not positive
    /// or not finite.
    pub fn set_trcd_ns(&mut self, trcd_ns: f64) -> Result<()> {
        if !trcd_ns.is_finite() || trcd_ns <= 0.0 {
            return Err(MemError::InvalidRegister {
                register: "tRCD",
                reason: format!("{trcd_ns} ns is not a positive finite duration"),
            });
        }
        self.trcd_ps = (trcd_ns * PS_PER_NS as f64).round() as u64;
        Ok(())
    }

    /// Programs `tRCD` directly in picoseconds (possibly below the
    /// datasheet value — the violation D-RaNGe exploits).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidRegister`] if the value is zero.
    pub fn set_trcd_ps(&mut self, trcd_ps: u64) -> Result<()> {
        if trcd_ps == 0 {
            return Err(MemError::InvalidRegister {
                register: "tRCD",
                reason: "0 ps is not a positive duration".into(),
            });
        }
        self.trcd_ps = trcd_ps;
        Ok(())
    }

    /// Restores the datasheet `tRCD`.
    pub fn reset_trcd(&mut self) {
        self.trcd_ps = self.datasheet.trcd_ps;
    }

    /// Whether the programmed `tRCD` violates the datasheet.
    pub fn trcd_violates_spec(&self) -> bool {
        self.trcd_ps < self.datasheet.trcd_ps
    }

    /// Firmware overhead added per issued command, ps.
    #[inline]
    pub fn cmd_overhead_ps(&self) -> u64 {
        self.cmd_overhead_ps
    }

    /// Sets the firmware overhead per issued command.
    pub fn set_cmd_overhead_ps(&mut self, ps: u64) {
        self.cmd_overhead_ps = ps;
    }

    /// The effective parameters the scheduler enforces: datasheet values
    /// with the programmed `tRCD` substituted.
    pub fn effective(&self) -> TimingParams {
        TimingParams {
            trcd_ps: self.trcd_ps,
            ..self.datasheet
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_datasheet() {
        let r = TimingRegisters::new(TimingParams::lpddr4_3200());
        assert_eq!(r.trcd_ns(), 18.0);
        assert!(!r.trcd_violates_spec());
    }

    #[test]
    fn program_and_reset_trcd() {
        let mut r = TimingRegisters::new(TimingParams::lpddr4_3200());
        r.set_trcd_ns(10.0).unwrap();
        assert_eq!(r.trcd_ns(), 10.0);
        assert!(r.trcd_violates_spec());
        assert_eq!(r.effective().trcd_ps, 10_000);
        r.reset_trcd();
        assert_eq!(r.trcd_ns(), 18.0);
    }

    #[test]
    fn rejects_nonpositive_trcd() {
        let mut r = TimingRegisters::new(TimingParams::lpddr4_3200());
        assert!(r.set_trcd_ns(0.0).is_err());
        assert!(r.set_trcd_ns(-3.0).is_err());
        assert!(r.set_trcd_ns(f64::NAN).is_err());
        assert_eq!(
            r.trcd_ns(),
            18.0,
            "failed writes leave the register unchanged"
        );
    }

    #[test]
    fn effective_only_changes_trcd() {
        let mut r = TimingRegisters::new(TimingParams::lpddr4_3200());
        r.set_trcd_ns(7.0).unwrap();
        let eff = r.effective();
        let spec = TimingParams::lpddr4_3200();
        assert_eq!(eff.tras_ps, spec.tras_ps);
        assert_eq!(eff.trp_ps, spec.trp_ps);
        assert_eq!(eff.trcd_ps, 7_000);
    }

    #[test]
    fn overhead_is_settable() {
        let mut r = TimingRegisters::new(TimingParams::lpddr4_3200());
        r.set_cmd_overhead_ps(0);
        assert_eq!(r.cmd_overhead_ps(), 0);
    }
}
