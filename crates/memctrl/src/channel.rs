//! Multi-channel memory system.
//!
//! DRAM channels operate independently (paper Section 2.1.1), so
//! D-RaNGe's throughput scales with channel count: the paper's headline
//! 717.4 Mb/s figure is a 4-channel projection of per-channel rates.

use dram_sim::{DeviceConfig, DramDevice};

use crate::controller::MemoryController;

/// A memory system of independent channels, each with its own
/// controller and device.
#[derive(Debug)]
pub struct MemorySystem {
    channels: Vec<MemoryController>,
}

impl MemorySystem {
    /// Builds `channels` channels from per-channel configurations.
    pub fn new(configs: impl IntoIterator<Item = DeviceConfig>) -> Self {
        MemorySystem {
            channels: configs
                .into_iter()
                .map(MemoryController::from_config)
                .collect(),
        }
    }

    /// Builds a system of `n` channels from one template configuration,
    /// giving each channel a distinct device seed (different chips).
    pub fn homogeneous(n: usize, template: DeviceConfig) -> Self {
        let channels = (0..n)
            .map(|i| {
                let config = template
                    .clone()
                    .with_seed(device_seed(&template, i))
                    .with_noise_seed_offset(i as u64);
                MemoryController::from_config(config)
            })
            .collect();
        MemorySystem { channels }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The controller of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel(&self, channel: usize) -> &MemoryController {
        &self.channels[channel]
    }

    /// Mutable controller of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_mut(&mut self, channel: usize) -> &mut MemoryController {
        &mut self.channels[channel]
    }

    /// Iterates over the channels.
    pub fn iter(&self) -> impl Iterator<Item = &MemoryController> {
        self.channels.iter()
    }

    /// Iterates mutably over the channels.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut MemoryController> {
        self.channels.iter_mut()
    }

    /// Consumes the system, returning the devices.
    pub fn into_devices(self) -> Vec<DramDevice> {
        self.channels
            .into_iter()
            .map(MemoryController::into_device)
            .collect()
    }
}

fn device_seed(template: &DeviceConfig, i: usize) -> u64 {
    // Derive distinct, stable per-channel seeds from the template's seed.
    template
        .seed()
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::Manufacturer;

    #[test]
    fn homogeneous_channels_have_distinct_devices() {
        let sys = MemorySystem::homogeneous(
            4,
            DeviceConfig::new(Manufacturer::B)
                .with_seed(77)
                .with_noise_seed(1),
        );
        assert_eq!(sys.channels(), 4);
        let s0 = sys.channel(0).device().seed();
        let s1 = sys.channel(1).device().seed();
        assert_ne!(s0, s1, "channels model different chips");
    }

    #[test]
    fn channels_operate_independently() {
        let mut sys = MemorySystem::homogeneous(
            2,
            DeviceConfig::new(Manufacturer::A)
                .with_seed(5)
                .with_noise_seed(2),
        );
        sys.channel_mut(0).act(0, 1).unwrap();
        // Channel 1's bank 0 is unaffected by channel 0's open row.
        sys.channel_mut(1).act(0, 2).unwrap();
        assert_eq!(sys.channel(0).device().open_row(0), Some(1));
        assert_eq!(sys.channel(1).device().open_row(0), Some(2));
    }

    #[test]
    fn into_devices_returns_all() {
        let sys = MemorySystem::homogeneous(
            3,
            DeviceConfig::new(Manufacturer::C)
                .with_seed(9)
                .with_noise_seed(3),
        );
        assert_eq!(sys.into_devices().len(), 3);
    }
}
