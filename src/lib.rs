//! # d-range — facade crate
//!
//! Re-exports the whole D-RaNGe reproduction workspace behind one
//! dependency: the DRAM device substrate ([`dram_sim`]), the memory
//! controller ([`memctrl`]), the NIST SP 800-22 suite ([`nist_sts`]),
//! the D-RaNGe mechanism itself ([`drange_core`]), the metrics
//! substrate ([`drange_telemetry`]), and the prior-work baseline TRNGs
//! ([`trng_baselines`]).
//!
//! See the repository `README.md` for a quickstart and the `examples/`
//! directory for runnable scenarios.

pub use dram_sim;
pub use drange_core as drange;
pub use drange_telemetry as telemetry;
pub use memctrl;
pub use nist_sts;
pub use trng_baselines as baselines;
