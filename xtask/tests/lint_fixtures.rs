//! Fixture tests: the lint pass must accept `fixtures/clean.rs`
//! verbatim and report exactly the `FINDING` markers in
//! `fixtures/dirty.rs`.

use xtask::{lint_source, Policy};

const CLEAN: &str = include_str!("fixtures/clean.rs");
const DIRTY: &str = include_str!("fixtures/dirty.rs");

/// Both fixtures are linted under a hot-path name so the
/// `instant-hot-path` rule is active.
const HOT_FILE: &str = "crates/core/src/engine.rs";

fn policy() -> Policy {
    Policy::parse(&format!("[instant-hot-path]\nhot = [\"{HOT_FILE}\"]\n")).expect("fixture policy")
}

/// The expected findings, read off the fixture's own `FINDING <rule>
/// [xN]` markers: (line, rule) pairs, one per expected finding.
fn expected(marked: &str) -> Vec<(u32, String)> {
    let mut want = Vec::new();
    for (idx, line) in marked.lines().enumerate() {
        let Some(pos) = line.find("FINDING ") else {
            continue;
        };
        let mut parts = line[pos + "FINDING ".len()..].split_whitespace();
        let rule = parts.next().expect("marker names a rule").to_string();
        let count = parts
            .next()
            .and_then(|c| c.strip_prefix('x'))
            .and_then(|c| c.parse::<usize>().ok())
            .unwrap_or(1);
        for _ in 0..count {
            want.push((idx as u32 + 1, rule.clone()));
        }
    }
    want.sort();
    want
}

#[test]
fn clean_fixture_lints_clean() {
    let diags = lint_source(HOT_FILE, CLEAN, &policy());
    assert!(
        diags.is_empty(),
        "clean fixture produced findings: {diags:#?}"
    );
}

#[test]
fn dirty_fixture_matches_its_markers() {
    let mut got: Vec<(u32, String)> = lint_source(HOT_FILE, DIRTY, &policy())
        .into_iter()
        .map(|d| (d.line, d.rule.to_string()))
        .collect();
    got.sort();
    assert_eq!(
        got,
        expected(DIRTY),
        "dirty fixture findings diverge from its FINDING markers"
    );
}

#[test]
fn dirty_fixture_covers_every_lint_rule() {
    // Analyze rules have their own fixture suite
    // (`tests/analyze_fixtures.rs`); this fixture covers the
    // token-level lint rules.
    let rules: std::collections::BTreeSet<String> =
        expected(DIRTY).into_iter().map(|(_, r)| r).collect();
    for rule in xtask::LINT_RULE_NAMES {
        assert!(
            rules.contains(*rule),
            "dirty fixture exercises no `{rule}` finding"
        );
    }
}
