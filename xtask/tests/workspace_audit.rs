//! Integration test for the policy-file audit: every path listed in
//! `lint_policy.toml` must still exist under the workspace root, or
//! `cargo xtask lint` reports the entry as stale.

use std::fs;
use std::path::PathBuf;

fn scratch_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("xtask-audit-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("xtask")).expect("create scratch xtask dir");
    fs::create_dir_all(root.join("crates/demo/src")).expect("create scratch crate");
    root
}

#[test]
fn stale_policy_paths_are_reported_with_their_line() {
    let root = scratch_root("stale");
    fs::write(root.join("crates/demo/src/ok.rs"), "pub fn ok() {}\n").expect("write source");
    fs::write(
        root.join("xtask/lint_policy.toml"),
        concat!(
            "# audit fixture\n",
            "[no-panic]\n",
            "allow = [\n",
            "    \"crates/demo/src/ok.rs\",\n",
            "    \"crates/demo/src/gone.rs\",\n",
            "]\n",
        ),
    )
    .expect("write policy");

    let diags = xtask::lint_workspace(&root).expect("lint runs");
    assert_eq!(
        diags.len(),
        1,
        "only the missing entry is stale: {diags:#?}"
    );
    let d = &diags[0];
    assert_eq!(d.rule, "stale-policy-path");
    assert_eq!(d.file, "xtask/lint_policy.toml");
    assert_eq!(d.line, 5, "diagnostic points at the stale entry's line");
    assert!(d.message.contains("crates/demo/src/gone.rs"));
    assert!(d.message.contains("no-panic"));

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn existing_policy_paths_pass_the_audit() {
    let root = scratch_root("fresh");
    fs::write(root.join("crates/demo/src/ok.rs"), "pub fn ok() {}\n").expect("write source");
    fs::write(
        root.join("xtask/lint_policy.toml"),
        "[no-panic]\nallow = [\"crates/demo/src/ok.rs\"]\n",
    )
    .expect("write policy");

    let diags = xtask::lint_workspace(&root).expect("lint runs");
    assert!(diags.is_empty(), "fresh policy audited clean: {diags:#?}");

    let _ = fs::remove_dir_all(&root);
}
