//! Known-bad fixture: every construct here must produce exactly the
//! findings the fixture test pins (it locates them by the trailing
//! marker comments — rule name, optional xN count — so the assertions
//! survive edits). Not compiled — parsed by the lint pass only.

use std::sync::atomic::{AtomicU64, Ordering}; // FINDING raw-atomics x2

pub fn aborts(v: Option<u64>) -> u64 {
    v.unwrap() // FINDING no-panic
}

pub fn aborts_with_message(v: Option<u64>) -> u64 {
    v.expect("always present") // FINDING no-panic
}

pub fn gives_up() {
    todo!("later") // FINDING no-panic
}

pub fn counts(c: &AtomicU64) -> u64 { // FINDING raw-atomics
    c.load(Ordering::Relaxed)
}

pub fn hot_loop_timing() {
    let _start = std::time::Instant::now(); // FINDING instant-hot-path
}

pub struct FakeScheduler;

impl FakeScheduler {
    fn set_timing(&mut self) {}
}

pub fn bypasses_registers(sched: &mut FakeScheduler, base_trcd: u64) -> u64 {
    sched.set_timing(); // FINDING timing-writes
    let params = TimingLike {
        trcd_ps: base_trcd / 2, // FINDING timing-writes
    };
    params.trcd_ps
}

pub struct TimingLike {
    pub trcd_ps: u64, // FINDING timing-writes
}

pub fn unjustified(v: Option<u64>) -> u64 {
    v.unwrap() // xtask:allow(no-panic) FINDING no-panic x2
}

// xtask:allow(no-panic) -- this waiver matches no finding FINDING no-panic
pub fn nothing_to_waive() {}
