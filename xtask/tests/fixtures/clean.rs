//! Known-good fixture: everything here must lint clean.
//! (Not compiled — parsed by the lint pass only.)

use std::time::Instant; // importing is fine; calling `now` in a hot file is not

/// Errors propagate instead of aborting.
pub fn parse(input: &str) -> Result<u64, std::num::ParseIntError> {
    input.trim().parse()
}

/// `unwrap_or`-family methods are not `unwrap`.
pub fn fallback(v: Option<u64>) -> u64 {
    v.unwrap_or_default().max(v.unwrap_or(7))
}

/// Strings and comments never trip the rules: "x.unwrap() panic!()".
/// Neither does /* sched.set_timing(t) inside a block comment */.
pub fn strings() -> &'static str {
    let s = "AtomicU64 Ordering::SeqCst .unwrap() trcd_ps: 7";
    let r = r#"panic!("not code") Instant::now()"#;
    if s.len() > r.len() {
        s
    } else {
        r
    }
}

/// Assert-family macros remain legal in library code.
pub fn checked_add(a: u32, b: u32) -> u32 {
    assert!(a < 1 << 30, "precondition");
    debug_assert_ne!(b, u32::MAX);
    a + b
}

/// A justified waiver suppresses its finding.
pub fn waived(v: Option<u64>) -> u64 {
    // xtask:allow(no-panic) -- fixture: value is Some by construction
    v.unwrap()
}

/// Reads of timing state (`x.trcd_ps`, no `:`) are not writes, and
/// paths like `timing::constants` don't resemble field inits.
pub fn read_only(reduced_trcd_ps: u64) -> u64 {
    reduced_trcd_ps + 1
}

#[cfg(test)]
mod tests {
    /// Test code may unwrap, panic, and poke timing freely.
    #[test]
    fn tests_are_exempt() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        if v.is_none() {
            panic!("unreachable in the fixture");
        }
        let _t = std::time::Instant::now();
    }
}
