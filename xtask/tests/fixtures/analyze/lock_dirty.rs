//! Known-bad fixture: inverted lock order, re-acquisition (direct and
//! via a call), and a naked condvar wait. Never compiled — parsed by
//! `tests/analyze_fixtures.rs`.

pub struct Pair {
    alpha: Mutex<bool>,
    beta: Mutex<bool>,
    gamma: Mutex<bool>,
    ready: Condvar,
}

impl Pair {
    /// One order: `alpha` then `beta`.
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    /// The same pair in the opposite order: closes the cycle.
    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock(); // FINDING lock-order
        drop(a);
        drop(b);
    }

    /// Re-acquires a lock it already holds.
    pub fn double(&self) {
        let first = self.gamma.lock();
        let second = self.gamma.lock(); // FINDING lock-order
        drop(second);
        drop(first);
    }

    fn helper(&self) {
        let g = self.gamma.lock();
        drop(g);
    }

    /// Re-acquires through a call: `helper` takes `gamma` again.
    pub fn nested(&self) {
        let g = self.gamma.lock();
        self.helper(); // FINDING lock-order
        drop(g);
    }

    /// Waits with no enclosing loop: a spurious wakeup skips the
    /// predicate re-check.
    pub fn naked_wait(&self) {
        let mut g = self.alpha.lock();
        self.ready.wait(&mut g); // FINDING condvar-loop
        drop(g);
    }
}
