//! Known-good fixture: every publication of harvested bits passes a
//! health-test feed first, or the function handles only one side of
//! the flow. Never compiled — parsed by `tests/analyze_fixtures.rs`.

pub struct Worker {
    source: Source,
    monitor: Monitor,
    chan: Chan,
}

impl Worker {
    /// Sanitized: the feed between harvest and publish pardons the
    /// whole path.
    pub fn run(&self) {
        let bits = self.source.harvest_batch();
        self.monitor.feed_all(&bits);
        self.chan.send(bits);
    }

    /// Source-only: harvests but never publishes.
    pub fn observe(&self) -> usize {
        let bits = self.source.sample_pass();
        bits.len()
    }

    /// Sink-only: publishes bits that were screened upstream.
    pub fn forward(&self, screened: Vec<u8>) {
        self.chan.try_send(screened);
    }
}

/// A sanitizer reached through a helper still pardons callers that
/// harvest and publish around it.
fn screen(monitor: &Monitor, bits: &[u8]) {
    monitor.feed_bits(bits);
}

pub fn pipeline(source: &Source, monitor: &Monitor, chan: &Chan) {
    let bits = source.harvest_block();
    screen(monitor, &bits);
    chan.push_block(&bits);
}
