//! Known-good fixture: the test policy grants this file `Relaxed` and
//! Acquire/Release; the one `SeqCst` carries a per-site waiver; and
//! `cmp::Ordering` paths are not atomics. Never compiled — parsed by
//! `tests/analyze_fixtures.rs`.

pub fn tally(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}

pub fn observe(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}

pub fn fence_total(flag: &AtomicBool) {
    // xtask:allow(atomics-policy) -- fixture: the total order is the point
    flag.store(true, Ordering::SeqCst);
}

/// `cmp::Ordering` variants must not be mistaken for atomic orderings.
pub fn ascending(a: u32, b: u32) -> bool {
    matches!(a.cmp(&b), Ordering::Less | Ordering::Equal)
}
