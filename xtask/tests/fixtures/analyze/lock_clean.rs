//! Known-good fixture: a single global lock order, handoff via drop,
//! scope-bounded guards, and loop-checked / predicate-form condvar
//! waits. Never compiled — parsed by `tests/analyze_fixtures.rs`.

pub struct Pair {
    alpha: Mutex<bool>,
    beta: Mutex<bool>,
    ready: Condvar,
}

impl Pair {
    /// The global order: `alpha` then `beta`, everywhere.
    pub fn transfer(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    /// Same order from a second entry point: consistent, no cycle.
    pub fn audit(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    /// Releases before taking the lock again: not a re-acquisition.
    pub fn handoff(&self) {
        let g = self.alpha.lock();
        drop(g);
        let g = self.alpha.lock();
        drop(g);
    }

    /// Scope-bounded guard: the block close releases it.
    pub fn scoped(&self) {
        {
            let g = self.alpha.lock();
            let _ = g;
        }
        let g = self.alpha.lock();
        drop(g);
    }

    /// The wait re-checks its predicate in a loop.
    pub fn wait_ready(&self) {
        let mut g = self.alpha.lock();
        while !*g {
            self.ready.wait(&mut g);
        }
        drop(g);
    }

    /// `wait_while` carries its own predicate loop and is exempt.
    pub fn wait_ready_predicate(&self) {
        let g = self.ready.wait_while(self.alpha.lock(), |ready| !*ready);
        drop(g);
    }
}
