//! Known-bad fixture: publishes harvested bits with no health feed.
//!
//! Never compiled — parsed by `tests/analyze_fixtures.rs`. The marker
//! comments name the exact findings the analyze pass must report, on
//! the marked line.

pub struct Rig {
    source: Source,
    chan: Chan,
}

impl Rig {
    /// Direct: harvests and publishes in one body.
    pub fn pump(&self) {
        let bits = self.source.sample_pass();
        self.chan.send(bits); // FINDING entropy-taint
    }
}

/// Indirect source: the harvest happens in a helper.
fn gather(source: &Source) -> Vec<u8> {
    source.harvest_block()
}

/// Indirect sink: the publication happens in a helper.
fn ship(chan: &Chan, bits: Vec<u8>) {
    chan.push_block(&bits);
}

/// Violates through both helpers; reported here — the innermost
/// function that can see both ends of the flow — not in the helpers.
pub fn relay(source: &Source, chan: &Chan) {
    let bits = gather(source);
    ship(chan, bits); // FINDING entropy-taint
}
