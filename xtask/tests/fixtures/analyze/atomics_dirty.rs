//! Known-bad fixture: orderings the policy does not grant this file.
//! Never compiled — parsed by `tests/analyze_fixtures.rs`.

pub fn latch(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst); // FINDING atomics-policy
}

pub fn tally(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed) // FINDING atomics-policy
}

pub fn acquire_view(cell: &AtomicUsize) -> usize {
    cell.load(Ordering::Acquire) // FINDING atomics-policy
}
