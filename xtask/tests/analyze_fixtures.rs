//! Fixture tests for `cargo xtask analyze`: the clean fixtures must
//! produce no findings (the negative cases each analysis must not
//! fire on), and the dirty fixtures must report exactly their
//! `FINDING <rule>` markers.

use std::collections::BTreeSet;

use xtask::{analyze_source_set, Policy};

const TAINT_DIRTY: &str = include_str!("fixtures/analyze/taint_dirty.rs");
const TAINT_CLEAN: &str = include_str!("fixtures/analyze/taint_clean.rs");
const LOCK_DIRTY: &str = include_str!("fixtures/analyze/lock_dirty.rs");
const LOCK_CLEAN: &str = include_str!("fixtures/analyze/lock_clean.rs");
const ATOMICS_DIRTY: &str = include_str!("fixtures/analyze/atomics_dirty.rs");
const ATOMICS_CLEAN: &str = include_str!("fixtures/analyze/atomics_clean.rs");

/// The clean atomics fixture is the one file the test policy grants
/// `Relaxed` and Acquire/Release.
const ATOMICS_CLEAN_PATH: &str = "crates/demo/src/atomics_clean.rs";

fn policy() -> Policy {
    Policy::parse(&format!(
        "[atomics-policy]\n\
         relaxed = [\"{ATOMICS_CLEAN_PATH}\"]\n\
         acquire-release = [\"{ATOMICS_CLEAN_PATH}\"]\n"
    ))
    .expect("fixture policy")
}

fn analyze_one(relpath: &str, source: &str) -> Vec<(u32, String)> {
    let sources = vec![(relpath.to_string(), source.to_string())];
    analyze_source_set(&sources, &policy())
        .into_iter()
        .map(|d| (d.line, d.rule.to_string()))
        .collect()
}

/// The expected findings, read off a fixture's own `FINDING <rule>
/// [xN]` markers: (line, rule) pairs, one per expected finding.
fn expected(marked: &str) -> Vec<(u32, String)> {
    let mut want = Vec::new();
    for (idx, line) in marked.lines().enumerate() {
        let Some(pos) = line.find("FINDING ") else {
            continue;
        };
        let mut parts = line[pos + "FINDING ".len()..].split_whitespace();
        let rule = parts.next().expect("marker names a rule").to_string();
        let count = parts
            .next()
            .and_then(|c| c.strip_prefix('x'))
            .and_then(|c| c.parse::<usize>().ok())
            .unwrap_or(1);
        for _ in 0..count {
            want.push((idx as u32 + 1, rule.clone()));
        }
    }
    want.sort();
    want
}

#[test]
fn clean_fixtures_analyze_clean() {
    for (path, src) in [
        ("crates/demo/src/taint_clean.rs", TAINT_CLEAN),
        ("crates/demo/src/lock_clean.rs", LOCK_CLEAN),
        (ATOMICS_CLEAN_PATH, ATOMICS_CLEAN),
    ] {
        let got = analyze_one(path, src);
        assert!(got.is_empty(), "{path} produced findings: {got:?}");
    }
}

#[test]
fn dirty_fixtures_match_their_markers() {
    for (path, src) in [
        ("crates/demo/src/taint_dirty.rs", TAINT_DIRTY),
        ("crates/demo/src/lock_dirty.rs", LOCK_DIRTY),
        ("crates/demo/src/atomics_dirty.rs", ATOMICS_DIRTY),
    ] {
        let mut got = analyze_one(path, src);
        got.sort();
        assert_eq!(
            got,
            expected(src),
            "{path} findings diverge from its FINDING markers"
        );
    }
}

/// The acceptance property for the taint pass, stated directly: a
/// function that publishes harvested bits with no `feed_*` on the
/// path is rejected.
#[test]
fn unfed_publication_is_rejected() {
    let got = analyze_one("crates/demo/src/taint_dirty.rs", TAINT_DIRTY);
    assert!(
        got.iter().any(|(_, r)| r == "entropy-taint"),
        "taint fixture publishing unfed bits was not rejected: {got:?}"
    );
}

#[test]
fn dirty_fixtures_cover_every_analyze_rule() {
    let rules: BTreeSet<String> = [TAINT_DIRTY, LOCK_DIRTY, ATOMICS_DIRTY]
        .iter()
        .flat_map(|s| expected(s))
        .map(|(_, r)| r)
        .collect();
    for rule in xtask::ANALYZE_RULE_NAMES {
        assert!(
            rules.contains(*rule),
            "dirty fixtures exercise no `{rule}` finding"
        );
    }
}

#[test]
fn analyze_excluded_files_are_skipped() {
    let policy =
        Policy::parse("[analyze]\nexclude = [\"crates/demo/src\"]\n").expect("exclude policy");
    let sources = vec![(
        "crates/demo/src/taint_dirty.rs".to_string(),
        TAINT_DIRTY.to_string(),
    )];
    assert!(
        analyze_source_set(&sources, &policy).is_empty(),
        "excluded file still produced findings"
    );
}
