//! The domain lint rules.
//!
//! Each rule walks the token stream of one file (test-masked tokens
//! removed from consideration) and emits [`Diagnostic`]s. Rules are
//! token-level by design: they cannot be fooled by formatting, strings,
//! or comments, and they run over the whole workspace in milliseconds
//! without a compiler in the loop.

use crate::lexer::Token;
use crate::policy::Policy;

/// The token-level rules `cargo xtask lint` runs, with their waiver
/// keys.
pub const LINT_RULE_NAMES: &[&str] = &[
    "no-panic",
    "raw-atomics",
    "timing-writes",
    "instant-hot-path",
];

/// The semantic rules `cargo xtask analyze` runs (see
/// [`crate::analyses`]), with their waiver keys.
pub const ANALYZE_RULE_NAMES: &[&str] = &[
    "entropy-taint",
    "lock-order",
    "condvar-loop",
    "atomics-policy",
];

/// Every waivable rule either pass knows. Keep this the concatenation
/// of [`LINT_RULE_NAMES`] and [`ANALYZE_RULE_NAMES`] (asserted by a
/// unit test): waiver validation accepts any of them, while each pass
/// only *applies* waivers for its own rules.
pub const RULE_NAMES: &[&str] = &[
    "no-panic",
    "raw-atomics",
    "timing-writes",
    "instant-hot-path",
    "entropy-taint",
    "lock-order",
    "condvar-loop",
    "atomics-policy",
];

/// One finding: where, which rule, and what to do about it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule key (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Human-oriented description with the remedy.
    pub message: String,
}

/// Runs every rule over one file's unmasked tokens.
pub fn check_file(
    relpath: &str,
    toks: &[Token<'_>],
    mask: &[bool],
    policy: &Policy,
    out: &mut Vec<Diagnostic>,
) {
    // Collapse the test-masked tokens away so rules see only library
    // code; adjacency for sequences like `.` `unwrap` `(` is preserved
    // because masking always removes whole items, never slices.
    let live: Vec<Token<'_>> = toks
        .iter()
        .zip(mask)
        .filter(|(_, &m)| !m)
        .map(|(t, _)| *t)
        .collect();

    no_panic(relpath, &live, policy, out);
    raw_atomics(relpath, &live, policy, out);
    timing_writes(relpath, &live, policy, out);
    instant_hot_path(relpath, &live, policy, out);
}

fn diag(out: &mut Vec<Diagnostic>, relpath: &str, line: u32, rule: &'static str, message: String) {
    out.push(Diagnostic {
        file: relpath.to_string(),
        line,
        rule,
        message,
    });
}

/// Library code must propagate errors, not abort: no `.unwrap()` /
/// `.expect(...)` (or their `_err` duals) and no `panic!` family
/// macros. `assert!`-family macros stay legal — invariant checks are
/// not error handling.
fn no_panic(relpath: &str, toks: &[Token<'_>], policy: &Policy, out: &mut Vec<Diagnostic>) {
    if policy.matches("no-panic", "allow", relpath) {
        return;
    }
    const METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for (i, t) in toks.iter().enumerate() {
        let followed_by_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let method_call =
            i > 0 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if method_call && METHODS.contains(&t.text) {
            diag(
                out,
                relpath,
                t.line,
                "no-panic",
                format!(
                    ".{}() aborts on the error path; return a `Result` (or \
                     waive with `// xtask:allow(no-panic) -- reason`)",
                    t.text
                ),
            );
        } else if followed_by_bang && MACROS.contains(&t.text) {
            // `macro_rules! panic` or a `!=` comparison never match
            // here: the name must be directly followed by `!` and then
            // a delimiter.
            let delim = toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'));
            if delim {
                diag(
                    out,
                    relpath,
                    t.line,
                    "no-panic",
                    format!(
                        "{}! aborts the process; return a typed error instead",
                        t.text
                    ),
                );
            }
        }
    }
}

/// Raw atomics belong to `drange-telemetry` and the audited protocol
/// modules only — everywhere else they are a review hazard (orderings
/// are easy to get wrong and impossible to test deterministically).
/// Flags `std::sync::atomic` paths/imports and bare `Atomic*` type
/// names outside the policy allowlist.
fn raw_atomics(relpath: &str, toks: &[Token<'_>], policy: &Policy, out: &mut Vec<Diagnostic>) {
    if policy.matches("raw-atomics", "allow", relpath) {
        return;
    }
    const ATOMIC_TYPES: &[&str] = &[
        "AtomicBool",
        "AtomicU8",
        "AtomicU16",
        "AtomicU32",
        "AtomicU64",
        "AtomicUsize",
        "AtomicI8",
        "AtomicI16",
        "AtomicI32",
        "AtomicI64",
        "AtomicIsize",
        "AtomicPtr",
    ];
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("atomic")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("sync")
        {
            diag(
                out,
                relpath,
                t.line,
                "raw-atomics",
                "raw `sync::atomic` use outside the audited modules; go through \
                 `drange_core::sync` or `drange-telemetry`, or add the file to \
                 `xtask/lint_policy.toml` [raw-atomics] with a review"
                    .to_string(),
            );
        } else if t.kind == crate::lexer::TokKind::Ident && ATOMIC_TYPES.contains(&t.text) {
            diag(
                out,
                relpath,
                t.line,
                "raw-atomics",
                format!(
                    "`{}` outside the audited modules; wrap the protocol in \
                     `drange_core::sync` (loom-checkable) instead",
                    t.text
                ),
            );
        }
    }
}

/// DRAM timing parameters must flow through `TimingRegisters`' checked
/// setters (`set_trcd_ns` / `set_trcd_ps`), which validate the value
/// and keep `trcd_violates_spec()` truthful. Building `TimingParams`
/// with an ad-hoc `trcd_ps:` override or calling a scheduler's
/// `.set_timing(...)` directly bypasses that gate.
fn timing_writes(relpath: &str, toks: &[Token<'_>], policy: &Policy, out: &mut Vec<Diagnostic>) {
    if policy.matches("timing-writes", "allow", relpath) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("set_timing")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            diag(
                out,
                relpath,
                t.line,
                "timing-writes",
                ".set_timing(...) bypasses the register file's legality checks; \
                 derive the parameters from `TimingRegisters::effective()` and \
                 waive the call site, or route through `MemoryController`"
                    .to_string(),
            );
        } else if t.is_ident("trcd_ps")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            // `trcd_ps::` is a path, not a field init.
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        // In a field *declaration* the init form is preceded by
        // `pub` or a brace/comma too, so only flag when the next
        // token after `:` is a value, not a bare type keyword —
        // token-level we cannot tell; rely on the allowlist for the
        // two definition sites and flag everything else.
        {
            diag(
                out,
                relpath,
                t.line,
                "timing-writes",
                "`trcd_ps:` written directly; program tRCD through \
                 `TimingRegisters::set_trcd_ps`/`set_trcd_ns` so the violation \
                 window stays auditable"
                    .to_string(),
            );
        }
    }
}

/// Hot-path modules must take time through their telemetry handles
/// (`StageTimer` etc.), not ad-hoc `Instant::now()` pairs: ad-hoc
/// timing skews the stage histograms the throughput claims rest on.
/// Applies only to files listed under `[instant-hot-path] hot`.
fn instant_hot_path(relpath: &str, toks: &[Token<'_>], policy: &Policy, out: &mut Vec<Diagnostic>) {
    if !policy.matches("instant-hot-path", "hot", relpath)
        || policy.matches("instant-hot-path", "allow", relpath)
    {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("now")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("Instant")
        {
            diag(
                out,
                relpath,
                t.line,
                "instant-hot-path",
                "`Instant::now()` in a hot-path module; use the telemetry stage \
                 timers so the overhead is measured, not smeared"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod rule_name_tests {
    use super::*;

    #[test]
    fn rule_names_is_the_union_of_both_passes() {
        let union: Vec<&str> = LINT_RULE_NAMES
            .iter()
            .chain(ANALYZE_RULE_NAMES)
            .copied()
            .collect();
        assert_eq!(RULE_NAMES, union.as_slice());
    }
}
