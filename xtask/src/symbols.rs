//! Workspace symbol table over the parsed files.
//!
//! Resolution is name-based: a call to `harvest_batch` resolves to
//! *every* item named `harvest_batch` in the workspace (filtered by
//! receiver/qualifier hints where available). This over-approximates
//! dynamic dispatch and cross-crate calls without type information —
//! exactly what the taint and lock-order analyses want: they must not
//! miss an edge, and a few spurious ones only make them stricter.

use std::collections::HashMap;

use crate::parse::{FnItem, ParsedFile};

/// Identifies one item: `(file index, item index)`.
pub type FnId = (usize, usize);

/// The workspace: all parsed files plus the name index.
pub struct Workspace<'a> {
    /// Parsed files, in deterministic (sorted-path) order.
    pub files: Vec<ParsedFile<'a>>,
    /// fn name → every item with that name.
    by_name: HashMap<String, Vec<FnId>>,
}

impl<'a> Workspace<'a> {
    /// Builds the table from parsed files.
    pub fn new(files: Vec<ParsedFile<'a>>) -> Self {
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.items.iter().enumerate() {
                by_name.entry(item.name.clone()).or_default().push((fi, ii));
            }
        }
        Workspace { files, by_name }
    }

    /// Every item with the given name.
    pub fn lookup(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The item behind an id.
    pub fn item(&self, id: FnId) -> &FnItem {
        &self.files[id.0].items[id.1]
    }

    /// The file containing an id.
    pub fn file(&self, id: FnId) -> &ParsedFile<'a> {
        &self.files[id.0]
    }

    /// Workspace-relative path of the file containing `id`.
    pub fn path(&self, id: FnId) -> &str {
        &self.files[id.0].relpath
    }

    /// The crate name for an id (`crates/<name>/…`), or the first path
    /// segment when the file is outside `crates/` (fixtures).
    pub fn crate_of(&self, id: FnId) -> &str {
        crate_of_path(self.path(id))
    }

    /// All ids, in deterministic order.
    pub fn all_ids(&self) -> impl Iterator<Item = FnId> + '_ {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| (0..f.items.len()).map(move |ii| (fi, ii)))
    }
}

/// Extracts the crate name from a workspace-relative path.
pub fn crate_of_path(relpath: &str) -> &str {
    let mut parts = relpath.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        (Some(first), _) => first,
        _ => relpath,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn lookup_finds_every_item_with_a_name() {
        let a = parse::parse(
            "crates/a/src/lib.rs",
            "fn go() {} impl X { fn go(&self) {} }",
        );
        let b = parse::parse("crates/b/src/lib.rs", "fn go() {}");
        let ws = Workspace::new(vec![a, b]);
        assert_eq!(ws.lookup("go").len(), 3);
        assert!(ws.lookup("missing").is_empty());
    }

    #[test]
    fn crate_names_come_from_the_path() {
        assert_eq!(crate_of_path("crates/serve/src/lib.rs"), "serve");
        assert_eq!(crate_of_path("fixture.rs"), "fixture.rs");
        assert_eq!(crate_of_path("tests/fixtures/x.rs"), "tests");
    }
}
