//! Shape checker for Chrome trace-event JSON (`cargo xtask check-trace`).
//!
//! The flight recorder's `/debug/trace` endpoint promises output that
//! `chrome://tracing` / Perfetto can load: a top-level object with a
//! `traceEvents` array of event objects, each carrying `name`, `ph`,
//! `ts`, `pid` and `tid`, with complete (`"ph": "X"`) events also
//! carrying `dur`. CI feeds a live capture through this checker so a
//! malformed export fails the smoke job instead of a human's browser.
//!
//! The parser below is a minimal recursive-descent JSON reader — just
//! enough to validate structure. It is deliberately strict about JSON
//! syntax (trailing commas, bare words and unescaped control characters
//! are errors) because the exporter is supposed to emit spec-clean
//! output.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed JSON value. Numbers stay as `f64`; the trace checker only
/// cares that they are numeric.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// What a valid trace looked like, for the CI log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Complete (`"ph": "X"`) span events.
    pub spans: usize,
    /// Instant (`"ph": "i"`) events.
    pub instants: usize,
    /// Distinct traces, counted by distinct `args.trace` values (the
    /// exporter keeps `pid` constant and carries the trace id in
    /// `args`); events without one fall back to their `pid`.
    pub traces: usize,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} event(s): {} span(s), {} instant(s) across {} trace(s)",
            self.events, self.spans, self.instants, self.traces
        )
    }
}

/// Validates `input` as Chrome trace-event JSON.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found:
/// JSON syntax errors, a missing/naked `traceEvents` array, or an
/// event missing one of the required fields.
pub fn check_trace(input: &str) -> Result<TraceSummary, String> {
    let root = parse(input)?;
    let Json::Object(top) = &root else {
        return Err(format!("top level must be an object, got {}", root.kind()));
    };
    let Some(events) = top.get("traceEvents") else {
        return Err("top-level object is missing `traceEvents`".into());
    };
    let Json::Array(events) = events else {
        return Err(format!(
            "`traceEvents` must be an array, got {}",
            events.kind()
        ));
    };

    let mut summary = TraceSummary {
        events: events.len(),
        spans: 0,
        instants: 0,
        traces: 0,
    };
    let mut traces: Vec<String> = Vec::new();
    for (index, event) in events.iter().enumerate() {
        let Json::Object(fields) = event else {
            return Err(format!(
                "traceEvents[{index}] must be an object, got {}",
                event.kind()
            ));
        };
        let field = |name: &str| {
            fields
                .get(name)
                .ok_or_else(|| format!("traceEvents[{index}] is missing `{name}`"))
        };
        let Json::String(ph) = field("ph")? else {
            return Err(format!("traceEvents[{index}].ph must be a string"));
        };
        let Json::String(name) = field("name")? else {
            return Err(format!("traceEvents[{index}].name must be a string"));
        };
        if name.is_empty() {
            return Err(format!("traceEvents[{index}].name is empty"));
        }
        let Json::Number(ts) = field("ts")? else {
            return Err(format!("traceEvents[{index}].ts must be a number"));
        };
        if !ts.is_finite() || *ts < 0.0 {
            return Err(format!("traceEvents[{index}].ts must be finite and >= 0"));
        }
        let Json::Number(pid) = field("pid")? else {
            return Err(format!("traceEvents[{index}].pid must be a number"));
        };
        let Json::Number(_) = field("tid")? else {
            return Err(format!("traceEvents[{index}].tid must be a number"));
        };
        match ph.as_str() {
            "X" => {
                summary.spans += 1;
                let Json::Number(dur) = field("dur")? else {
                    return Err(format!("traceEvents[{index}].dur must be a number"));
                };
                if !dur.is_finite() || *dur < 0.0 {
                    return Err(format!("traceEvents[{index}].dur must be finite and >= 0"));
                }
            }
            "i" => summary.instants += 1,
            other => {
                return Err(format!(
                    "traceEvents[{index}].ph is `{other}`; the exporter only \
                     emits complete (`X`) and instant (`i`) events"
                ));
            }
        }
        let trace_key = match fields.get("args") {
            Some(Json::Object(args)) => match args.get("trace") {
                Some(Json::String(trace)) => trace.clone(),
                _ => format!("pid:{pid}"),
            },
            _ => format!("pid:{pid}"),
        };
        if !traces.contains(&trace_key) {
            traces.push(trace_key);
        }
    }
    summary.traces = traces.len();
    Ok(summary)
}

/// Parses a complete JSON document (single value, nothing trailing).
///
/// # Errors
///
/// Returns a byte-offset-tagged message for the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected byte `{}` at {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs never appear in the
                            // exporter's output (it only escapes ASCII
                            // control bytes), so reject them outright.
                            let ch = char::from_u32(code).ok_or_else(|| {
                                format!("non-scalar \\u escape at byte {}", self.pos)
                            })?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                Some(_) => {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c != b'"' && c != b'\\' && c >= 0x20)
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
                    out.push_str(chunk);
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "displayTimeUnit": "ms",
        "traceEvents": [
            {"name": "serve.request", "ph": "X", "ts": 0, "dur": 1500,
             "pid": 1, "tid": 1, "args": {"trace": "00c0ffee", "path": "/random"}},
            {"name": "serve.parse", "ph": "X", "ts": 10.5, "dur": 40,
             "pid": 1, "tid": 1, "args": {"trace": "00c0ffee"}},
            {"name": "blocked", "ph": "i", "ts": 60, "pid": 7, "tid": 2, "s": "t"}
        ]
    }"#;

    #[test]
    fn accepts_well_formed_traces() {
        let summary = check_trace(GOOD).expect("good trace");
        assert_eq!(
            summary,
            TraceSummary {
                events: 3,
                spans: 2,
                instants: 1,
                traces: 2
            }
        );
        assert_eq!(
            summary.to_string(),
            "3 event(s): 2 span(s), 1 instant(s) across 2 trace(s)"
        );
    }

    #[test]
    fn accepts_an_empty_event_list() {
        let summary = check_trace(r#"{"traceEvents": []}"#).expect("empty trace");
        assert_eq!(summary.events, 0);
    }

    #[test]
    fn rejects_missing_trace_events() {
        let err = check_trace(r#"{"displayTimeUnit": "ms"}"#).unwrap_err();
        assert!(err.contains("traceEvents"), "{err}");
    }

    #[test]
    fn rejects_non_object_top_level() {
        let err = check_trace("[1, 2]").unwrap_err();
        assert!(err.contains("top level"), "{err}");
    }

    #[test]
    fn rejects_span_without_duration() {
        let err = check_trace(
            r#"{"traceEvents": [{"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("dur"), "{err}");
    }

    #[test]
    fn rejects_unknown_phase() {
        let err = check_trace(
            r#"{"traceEvents": [{"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("`B`"), "{err}");
    }

    #[test]
    fn rejects_missing_event_fields() {
        for missing in ["name", "ph", "ts", "pid", "tid"] {
            let mut fields = vec![
                ("name", r#""a""#),
                ("ph", r#""i""#),
                ("ts", "0"),
                ("pid", "1"),
                ("tid", "1"),
            ];
            fields.retain(|(k, _)| *k != missing);
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect();
            let doc = format!("{{\"traceEvents\": [{{{}}}]}}", body.join(", "));
            let err = check_trace(&doc).unwrap_err();
            assert!(err.contains(missing), "dropping {missing}: {err}");
        }
    }

    #[test]
    fn rejects_json_syntax_errors() {
        assert!(check_trace(r#"{"traceEvents": [}"#).is_err());
        assert!(check_trace(r#"{"traceEvents": [],}"#).is_err());
        assert!(check_trace("").is_err());
        assert!(check_trace(r#"{"traceEvents": []} extra"#).is_err());
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = parse(r#"{"s": "a\n\"b\"A", "n": -1.5e3, "t": true, "x": null}"#).expect("parse");
        let Json::Object(map) = v else { panic!() };
        assert_eq!(map["s"], Json::String("a\n\"b\"A".into()));
        assert_eq!(map["n"], Json::Number(-1500.0));
        assert_eq!(map["t"], Json::Bool(true));
        assert_eq!(map["x"], Json::Null);
    }
}
