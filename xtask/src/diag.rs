//! Diagnostic output formats shared by `lint` and `analyze`.
//!
//! Three formats, selected with `--format`:
//!
//! - `text` (default): `file:line: [rule] message`, one per line — the
//!   historical human-oriented output.
//! - `json`: a self-contained array of `{file, line, rule, message}`
//!   objects for tooling (the nightly workflow publishes this as an
//!   artifact). Hand-rolled emission, matching the crate's no-deps
//!   rule; escaping covers everything the diagnostics can contain.
//! - `github`: GitHub Actions workflow commands
//!   (`::error file=…,line=…,title=…::message`) so findings surface as
//!   inline PR annotations when a CI job runs with this format.

use crate::rules::Diagnostic;

/// Output format for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// `file:line: [rule] message` lines.
    #[default]
    Text,
    /// A JSON array of finding objects.
    Json,
    /// GitHub Actions `::error` workflow commands.
    Github,
}

impl Format {
    /// Parses a `--format` argument.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the valid formats.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "github" => Ok(Format::Github),
            other => Err(format!(
                "unknown format `{other}` (expected text, json, or github)"
            )),
        }
    }
}

/// Renders `diags` in the requested format. The result is a complete
/// document (including a trailing newline when nonempty) ready for
/// stdout.
pub fn render(diags: &[Diagnostic], format: Format) -> String {
    match format {
        Format::Text => {
            let mut out = String::new();
            for d in diags {
                out.push_str(&format!(
                    "{}:{}: [{}] {}\n",
                    d.file, d.line, d.rule, d.message
                ));
            }
            out
        }
        Format::Json => render_json(diags),
        Format::Github => {
            let mut out = String::new();
            for d in diags {
                out.push_str(&format!(
                    "::error file={},line={},title={}::{}\n",
                    escape_property(&d.file),
                    d.line,
                    escape_property(&format!("xtask {}", d.rule)),
                    escape_data(&d.message)
                ));
            }
            out
        }
    }
}

fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&d.file),
            d.line,
            json_string(d.rule),
            json_string(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escapes a string for JSON (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes the message part of a workflow command.
fn escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command property value (file, title).
fn escape_property(s: &str) -> String {
    escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                file: "crates/a/src/lib.rs".into(),
                line: 3,
                rule: "no-panic",
                message: "uses \"quotes\" and\nnewlines, 100%".into(),
            },
            Diagnostic {
                file: "crates/b/src/x.rs".into(),
                line: 9,
                rule: "lock-order",
                message: "cycle".into(),
            },
        ]
    }

    #[test]
    fn text_format_matches_historical_lines() {
        let out = render(&sample()[1..], Format::Text);
        assert_eq!(out, "crates/b/src/x.rs:9: [lock-order] cycle\n");
    }

    #[test]
    fn json_is_escaped_and_well_formed() {
        let out = render(&sample(), Format::Json);
        assert!(out.contains("\\\"quotes\\\""), "quote escaping: {out}");
        assert!(out.contains("and\\nnewlines"), "newline escaping: {out}");
        assert!(out.starts_with('[') && out.ends_with("]\n"));
        // No raw control characters may survive into the document.
        assert!(!out
            .chars()
            .any(|c| c == '\r' || (c != '\n' && (c as u32) < 0x20)));
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        assert_eq!(render(&[], Format::Json), "[]\n");
    }

    #[test]
    fn github_annotations_escape_commands() {
        let out = render(&sample(), Format::Github);
        assert!(out.starts_with("::error file=crates/a/src/lib.rs,line=3,"));
        assert!(out.contains("title=xtask no-panic::"));
        assert!(out.contains("and%0Anewlines"), "newline → %0A: {out}");
        assert!(out.contains("100%25"), "percent → %25: {out}");
    }
}
