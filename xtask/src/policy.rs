//! The lint policy file (`xtask/lint_policy.toml`).
//!
//! A deliberately tiny TOML subset — `[section]` headers, `#` comments,
//! and `key = [ "string", ... ]` arrays (single- or multi-line) — so the
//! crate stays dependency-free. Anything else in the file is a hard
//! error: a policy that cannot be parsed must not silently allow code.

use std::collections::BTreeMap;

/// Parsed policy: per-rule path lists.
#[derive(Debug, Default, Clone)]
pub struct Policy {
    /// `section.key` → list of workspace-relative path prefixes.
    entries: BTreeMap<String, Vec<String>>,
}

impl Policy {
    /// The path list for `section` / `key`, empty if absent.
    pub fn paths(&self, section: &str, key: &str) -> &[String] {
        self.entries
            .get(&format!("{section}.{key}"))
            .map_or(&[], Vec::as_slice)
    }

    /// Whether `relpath` (workspace-relative, `/`-separated) matches an
    /// entry in `section.key`. An entry matches exactly, or as a
    /// directory prefix (`crates/loomlite/src` covers every file under
    /// it).
    pub fn matches(&self, section: &str, key: &str, relpath: &str) -> bool {
        self.paths(section, key).iter().any(|p| {
            relpath == p
                || relpath
                    .strip_prefix(p.as_str())
                    .is_some_and(|rest| rest.starts_with('/'))
        })
    }

    /// Every `(section.key, path)` pair in the policy, for auditing
    /// entries against the filesystem.
    pub fn all_entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .flat_map(|(key, paths)| paths.iter().map(move |p| (key.as_str(), p.as_str())))
    }

    /// Parses the policy text. Returns `Err` with a description of the
    /// first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section.is_empty() {
                    return Err(format!("line {}: empty section header", idx + 1));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = [...]`", idx + 1));
            };
            let key = key.trim();
            if section.is_empty() || key.is_empty() {
                return Err(format!("line {}: key outside a [section]", idx + 1));
            }
            // Gather the array text, consuming further lines until the
            // closing bracket.
            let mut array = value.trim().to_string();
            while !array.ends_with(']') {
                let Some((_, more)) = lines.next() else {
                    return Err(format!("line {}: unterminated array", idx + 1));
                };
                array.push(' ');
                array.push_str(strip_comment(more).trim());
            }
            let inner = array
                .strip_prefix('[')
                .and_then(|a| a.strip_suffix(']'))
                .ok_or_else(|| format!("line {}: value must be a [...] array", idx + 1))?;
            let mut paths = Vec::new();
            for piece in inner.split(',') {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue; // trailing comma
                }
                let unquoted = piece
                    .strip_prefix('"')
                    .and_then(|p| p.strip_suffix('"'))
                    .ok_or_else(|| {
                        format!("line {}: array items must be \"quoted\" ({piece})", idx + 1)
                    })?;
                paths.push(unquoted.to_string());
            }
            entries.insert(format!("{section}.{key}"), paths);
        }
        Ok(Policy { entries })
    }
}

/// Drops a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let p = Policy::parse(
            r#"
# policy
[raw-atomics]
allow = ["crates/loomlite/src", "crates/core/src/sync.rs"]

[instant-hot-path]
hot = [
    "crates/core/src/engine.rs",  # the hot path
    "crates/core/src/sampler.rs",
]
"#,
        )
        .expect("valid policy");
        assert_eq!(p.paths("raw-atomics", "allow").len(), 2);
        assert_eq!(p.paths("instant-hot-path", "hot").len(), 2);
        assert!(p.paths("missing", "key").is_empty());
    }

    #[test]
    fn prefix_matching_covers_directories_not_substrings() {
        let p =
            Policy::parse("[r]\nallow = [\"crates/core/src/sync.rs\", \"crates/loomlite/src\"]\n")
                .expect("valid policy");
        assert!(p.matches("r", "allow", "crates/core/src/sync.rs"));
        assert!(p.matches("r", "allow", "crates/loomlite/src/sync.rs"));
        assert!(!p.matches("r", "allow", "crates/loomlite/src2/x.rs"));
        assert!(!p.matches("r", "allow", "crates/core/src/sync.rs.bak"));
    }

    #[test]
    fn directory_entries_do_not_match_name_prefixed_siblings() {
        // `crates/serve` must cover files *under* that directory, not a
        // sibling directory whose name merely starts with it.
        let p = Policy::parse("[r]\nallow = [\"crates/serve\"]\n").expect("valid policy");
        assert!(p.matches("r", "allow", "crates/serve/src/lib.rs"));
        assert!(p.matches("r", "allow", "crates/serve/src/nested/deep.rs"));
        assert!(!p.matches("r", "allow", "crates/server/src/lib.rs"));
        assert!(!p.matches("r", "allow", "crates/serve-next/src/lib.rs"));
    }

    #[test]
    fn exact_file_entries_do_not_match_name_extensions() {
        let p =
            Policy::parse("[r]\nallow = [\"crates/core/src/engine.rs\"]\n").expect("valid policy");
        assert!(p.matches("r", "allow", "crates/core/src/engine.rs"));
        // A file whose name merely extends the entry is a different file.
        assert!(!p.matches("r", "allow", "crates/core/src/engine.rs.orig"));
        assert!(!p.matches("r", "allow", "crates/core/src/engine_ext.rs"));
        // An entry never matches its own parent directory's siblings.
        assert!(!p.matches("r", "allow", "crates/core/src"));
    }

    #[test]
    fn all_entries_enumerates_every_section_key_path_pair() {
        let p = Policy::parse("[a]\nx = [\"p1\", \"p2\"]\n\n[b]\ny = [\"p3\"]\n")
            .expect("valid policy");
        let got: Vec<(&str, &str)> = p.all_entries().collect();
        assert_eq!(got, vec![("a.x", "p1"), ("a.x", "p2"), ("b.y", "p3")]);
    }

    #[test]
    fn malformed_lines_are_hard_errors() {
        assert!(
            Policy::parse("key = [\"a\"]\n").is_err(),
            "key outside section"
        );
        assert!(Policy::parse("[s]\nkey [\"a\"]\n").is_err(), "missing =");
        assert!(
            Policy::parse("[s]\nkey = [\"a\"\n").is_err(),
            "unterminated"
        );
        assert!(
            Policy::parse("[s]\nkey = [unquoted]\n").is_err(),
            "unquoted"
        );
    }
}
