//! A minimal Rust token scanner for the lint pass.
//!
//! This is not a full lexer: it only needs to (a) never mistake the
//! inside of a string, char literal, or comment for code, and (b)
//! report identifiers and punctuation with line numbers. It handles
//! line comments, nested block comments, string/byte-string literals
//! with escapes, raw strings with arbitrary `#` fences, char literals
//! vs. lifetimes, and numeric literals (so `1e6` never yields an
//! `e6` identifier).

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `(`, `{`, ...).
    Punct,
    /// Numeric literal (consumed so suffixes don't look like idents).
    Number,
    /// Lifetime such as `'a` (distinct so `'static` is not an ident).
    Lifetime,
}

/// One scanned token: its text, kind, and 1-based source line.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// The token's source text.
    pub text: &'a str,
    /// What kind of token it is.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token<'_> {
    /// Whether this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && {
            let mut buf = [0u8; 4];
            self.text == ch.encode_utf8(&mut buf)
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans `src` into tokens, discarding comments and literal contents.
pub fn scan(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, per the Rust grammar.
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => i = skip_quoted(bytes, i + 1, b'"', &mut line),
            b'\'' => {
                // Char literal or lifetime. `'\...'` and `'x'` are
                // literals; anything else (`'a` with no closing quote,
                // `'static`) is a lifetime.
                if bytes.get(i + 1) == Some(&b'\\') {
                    i = skip_quoted(bytes, i + 1, b'\'', &mut line);
                } else if bytes.get(i + 1).is_some_and(|&c| is_ident_start(c))
                    && bytes.get(i + 2) != Some(&b'\'')
                {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    toks.push(Token {
                        text: &src[start..i],
                        kind: TokKind::Lifetime,
                        line,
                    });
                } else {
                    i = skip_quoted(bytes, i + 1, b'\'', &mut line);
                }
            }
            b'r' | b'b' if looks_like_raw_or_byte_literal(bytes, i) => {
                i = skip_raw_or_byte_literal(bytes, i, &mut line);
            }
            b if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                toks.push(Token {
                    text: &src[start..i],
                    kind: TokKind::Ident,
                    line,
                });
            }
            b if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (is_ident_continue(bytes[i])
                        || (bytes[i] == b'.'
                            && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())))
                {
                    i += 1;
                }
                toks.push(Token {
                    text: &src[start..i],
                    kind: TokKind::Number,
                    line,
                });
            }
            _ => {
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                toks.push(Token {
                    text: &src[i..i + ch_len],
                    kind: TokKind::Punct,
                    line,
                });
                i += ch_len;
            }
        }
    }
    toks
}

/// Advances `idx` past a quoted literal body (after the opening
/// quote), honoring backslash escapes, and returns the new index
/// (past the closing quote). Newlines — including one consumed as the
/// escaped character of a `\<newline>` line continuation — bump
/// `line`, so tokens after a multi-line string keep correct lines.
fn skip_quoted(bytes: &[u8], mut idx: usize, quote: u8, line: &mut u32) -> usize {
    while idx < bytes.len() {
        match bytes[idx] {
            b'\\' => {
                if bytes.get(idx + 1) == Some(&b'\n') {
                    *line += 1;
                }
                idx += 2;
            }
            b'\n' => {
                *line += 1;
                idx += 1;
            }
            b if b == quote => return idx + 1,
            _ => idx += 1,
        }
    }
    idx
}

/// Whether position `i` (at `r` or `b`) starts a raw string, byte
/// string, or byte char literal rather than an identifier.
fn looks_like_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    // Reject when we're in the middle of an identifier (`attr`, `curb`).
    if i > 0 && is_ident_continue(bytes[i - 1]) {
        return false;
    }
    match bytes[i] {
        b'r' => {
            matches!(bytes.get(i + 1), Some(b'"') | Some(b'#'))
                && raw_fence_len(bytes, i + 1).is_some()
        }
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => raw_fence_len(bytes, i + 2).is_some(),
            _ => false,
        },
        _ => false,
    }
}

/// If `idx` points at `#*"`, returns the number of `#`s.
fn raw_fence_len(bytes: &[u8], mut idx: usize) -> Option<usize> {
    let mut hashes = 0usize;
    while bytes.get(idx) == Some(&b'#') {
        hashes += 1;
        idx += 1;
    }
    (bytes.get(idx) == Some(&b'"')).then_some(hashes)
}

/// Skips a raw string / byte string / byte char starting at `i`.
fn skip_raw_or_byte_literal(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let (fence_at, is_raw) = match bytes[i] {
        b'r' => (i + 1, true),
        b'b' if bytes.get(i + 1) == Some(&b'r') => (i + 2, true),
        b'b' if bytes.get(i + 1) == Some(&b'"') => (i + 1, false),
        _ => (i + 1, false), // b'...'
    };
    if !is_raw {
        let quote = bytes[fence_at];
        return skip_quoted(bytes, fence_at + 1, quote, line);
    }
    let hashes = raw_fence_len(bytes, fence_at).unwrap_or(0);
    let mut idx = fence_at + hashes + 1; // past the opening quote
    while idx < bytes.len() {
        if bytes[idx] == b'\n' {
            *line += 1;
            idx += 1;
        } else if bytes[idx] == b'"'
            && bytes[idx + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return idx + 1 + hashes;
        } else {
            idx += 1;
        }
    }
    idx
}

/// Marks every token that belongs to test-only code: an item annotated
/// `#[test]`, `#[bench]`, or any `#[cfg(...)]` whose argument mentions
/// `test` (covers `cfg(test)`, `cfg(all(test, ...))`). Returns a mask
/// parallel to `toks`; masked tokens are exempt from the lint rules.
pub fn test_mask(toks: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Scan the attribute to its matching `]`.
        let attr_start = i;
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut mentions_test = false;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].is_ident("test") || toks[j].is_ident("bench") {
                // `#[cfg(not(test))]` guards *production* code.
                let negated = j >= 2 && toks[j - 1].is_punct('(') && toks[j - 2].is_ident("not");
                if !negated {
                    mentions_test = true;
                }
            }
            j += 1;
        }
        if !mentions_test {
            i = j + 1;
            continue;
        }
        // Mask from the attribute through the end of the annotated
        // item: the matching `}` of its first brace, or the first `;`
        // seen before any brace (e.g. `#[cfg(test)] use ...;`).
        let mut k = j + 1;
        let mut braces = 0i32;
        let end = loop {
            match toks.get(k) {
                None => break toks.len(),
                Some(t) if t.is_punct('{') => braces += 1,
                Some(t) if t.is_punct('}') => {
                    braces -= 1;
                    if braces == 0 {
                        break k + 1;
                    }
                }
                Some(t) if t.is_punct(';') && braces == 0 => break k + 1,
                _ => {}
            }
            k += 1;
        };
        for m in mask.iter_mut().take(end).skip(attr_start) {
            *m = true;
        }
        i = end;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(&str, u32)> {
        scan(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text, t.line))
            .collect()
    }

    #[test]
    fn byte_string_contents_are_not_code() {
        // `unwrap` and `//` inside the byte string must not register as
        // a method call or start a comment that swallows `after`.
        let src = "let x = b\"unwrap() // not a comment\"; after();\n";
        let ids = idents(src);
        assert!(ids.iter().any(|(t, _)| *t == "after"));
        assert!(!ids.iter().any(|(t, _)| *t == "unwrap"));
    }

    #[test]
    fn byte_char_and_escaped_byte_char_skip_cleanly() {
        let ids = idents("let a = b'x'; let b = b'\\''; done();\n");
        assert!(ids.iter().any(|(t, _)| *t == "done"));
        assert!(!ids.iter().any(|(t, _)| *t == "x"));
    }

    #[test]
    fn raw_byte_string_with_fences_and_inner_quotes() {
        // The `"#` inside the 2-hash fence must not close the literal.
        let src = "let x = br##\"quote \"# unwrap() \"##; tail();\n";
        let ids = idents(src);
        assert!(ids.iter().any(|(t, _)| *t == "tail"));
        assert!(!ids.iter().any(|(t, _)| *t == "unwrap"));
    }

    #[test]
    fn raw_byte_string_counts_interior_newlines() {
        let src = "let x = br#\"a\nb\nc\"#;\nmarker();\n";
        let ids = idents(src);
        assert_eq!(
            ids.iter().find(|(t, _)| *t == "marker").map(|(_, l)| *l),
            Some(4),
            "line numbers after a multi-line raw byte string"
        );
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* outer /* inner */ still comment */ real();\n/* /*/*x*/*/ */ deep();\n";
        let ids = idents(src);
        assert_eq!(
            ids,
            vec![("real", 1), ("deep", 2)],
            "nested block comments must end only at the matching close"
        );
    }

    #[test]
    fn block_comment_newlines_keep_line_numbers() {
        let src = "/* a\n * b\n */\nhere();\n";
        assert_eq!(idents(src), vec![("here", 4)]);
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers() {
        // A `\<newline>` line continuation consumes the newline as the
        // escaped character; the next line's tokens must still land on
        // line 2 (this was off by one per continuation).
        let src = "let s = \"a\\\nb\"; two();\nthree();\n";
        let ids = idents(src);
        assert_eq!(
            ids.iter().find(|(t, _)| *t == "two").map(|(_, l)| *l),
            Some(2)
        );
        assert_eq!(
            ids.iter().find(|(t, _)| *t == "three").map(|(_, l)| *l),
            Some(3)
        );
    }

    #[test]
    fn escaped_newline_in_byte_string_keeps_line_numbers() {
        let src = "let s = b\"a\\\nb\"; after();\nnext();\n";
        let ids = idents(src);
        assert_eq!(
            ids.iter().find(|(t, _)| *t == "next").map(|(_, l)| *l),
            Some(3)
        );
    }

    #[test]
    fn identifiers_ending_in_b_or_r_are_not_literals() {
        // `curb "x"` / `attr "y"`: the trailing b/r belongs to the
        // identifier, not a byte/raw-string prefix.
        let ids = idents("let curb = 1; let attr = 2; b_var();\nr();\n");
        let names: Vec<&str> = ids.iter().map(|(t, _)| *t).collect();
        assert!(names.contains(&"curb"));
        assert!(names.contains(&"attr"));
        assert!(names.contains(&"b_var"));
        assert!(names.contains(&"r"));
    }
}
