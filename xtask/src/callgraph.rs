//! Over-approximate call graph over the workspace symbol table.
//!
//! Edges are name-resolved (see [`crate::symbols`]): a call site
//! `x.foo()` adds an edge to every item named `foo`. `Qual::foo()`
//! narrows to items whose `impl` self type is `Qual` when any exist.
//! Macro invocations `name!(…)` edge to a local `macro_rules! name`
//! definition when one exists, so lock sites inside local macros
//! participate. Calls that resolve to nothing (std, external crates)
//! simply have no edge — analyses treat specific *names* as
//! sources/sinks/sanitizers instead.

use std::collections::{HashMap, HashSet};

use crate::parse::{self, EventKind};
use crate::symbols::{FnId, Workspace};

/// The call graph: per-item resolved callees, in call-site order.
pub struct CallGraph {
    /// id → resolved callee ids (deduplicated, order preserved).
    pub callees: HashMap<FnId, Vec<FnId>>,
    /// id → callers (reverse edges).
    pub callers: HashMap<FnId, Vec<FnId>>,
}

impl CallGraph {
    /// Builds the graph for a workspace.
    pub fn build(ws: &Workspace<'_>) -> Self {
        let mut callees: HashMap<FnId, Vec<FnId>> = HashMap::new();
        let mut callers: HashMap<FnId, Vec<FnId>> = HashMap::new();
        for id in ws.all_ids() {
            let item = ws.item(id);
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            for ev in parse::body_events(ws.file(id), item) {
                let EventKind::Call(call) = ev.kind else {
                    continue;
                };
                for &target in resolve(ws, &call) {
                    if target != id && seen.insert(target) {
                        out.push(target);
                        callers.entry(target).or_default().push(id);
                    }
                }
            }
            callees.insert(id, out);
        }
        CallGraph { callees, callers }
    }

    /// The resolved callees of `id`.
    pub fn callees_of(&self, id: FnId) -> &[FnId] {
        self.callees.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Fixpoint reachability: the set of items from which some item
    /// satisfying `hit` is reachable through the call graph (including
    /// the hit items themselves). Used by the taint analysis to answer
    /// "can f reach a sink?" for every f at once.
    pub fn reaches(&self, ws: &Workspace<'_>, hit: impl Fn(FnId) -> bool) -> HashSet<FnId> {
        let mut set: HashSet<FnId> = ws.all_ids().filter(|&id| hit(id)).collect();
        let mut work: Vec<FnId> = set.iter().copied().collect();
        while let Some(id) = work.pop() {
            if let Some(callers) = self.callers.get(&id) {
                for &c in callers {
                    if set.insert(c) {
                        work.push(c);
                    }
                }
            }
        }
        set
    }
}

/// Resolves one call site to candidate items.
fn resolve<'w>(ws: &'w Workspace<'_>, call: &parse::CallSite<'_>) -> &'w [FnId] {
    let candidates = ws.lookup(call.name);
    if call.is_macro {
        // Only edge to macro_rules definitions for `name!` calls.
        return if candidates.iter().any(|&id| ws.item(id).is_macro) {
            candidates
        } else {
            &[]
        };
    }
    candidates
}

/// For `Qual::name(…)` calls, narrows `candidates` to items whose impl
/// self type matches the qualifier — but only when at least one does
/// (otherwise the qualifier is a module path and all candidates stay).
pub fn narrow_by_qualifier(
    ws: &Workspace<'_>,
    candidates: &[FnId],
    qualifier: Option<&str>,
) -> Vec<FnId> {
    if let Some(q) = qualifier {
        let narrowed: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&id| ws.item(id).self_ty.as_deref() == Some(q))
            .collect();
        if !narrowed.is_empty() {
            return narrowed;
        }
    }
    candidates.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::symbols::Workspace;

    fn ws(srcs: &[(&str, &'static str)]) -> Workspace<'static> {
        Workspace::new(
            srcs.iter()
                .map(|(path, src)| parse::parse(path, src))
                .collect(),
        )
    }

    fn id_of(ws: &Workspace<'_>, name: &str) -> FnId {
        ws.lookup(name)[0]
    }

    #[test]
    fn edges_cross_files_by_name() {
        let ws = ws(&[
            ("crates/a/src/lib.rs", "fn caller() { helper(); }"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let g = CallGraph::build(&ws);
        assert_eq!(g.callees_of(id_of(&ws, "caller")), &[id_of(&ws, "helper")]);
    }

    #[test]
    fn method_calls_edge_to_every_impl() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "impl X { fn feed(&self) {} } impl Y { fn feed(&self) {} } fn f(v: &V) { v.feed(); }",
        )]);
        let g = CallGraph::build(&ws);
        assert_eq!(g.callees_of(id_of(&ws, "f")).len(), 2);
    }

    #[test]
    fn macro_invocations_edge_to_local_macro_rules() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "macro_rules! grab { () => { s.lock() }; } fn f() { let g = grab!(); }",
        )]);
        let g = CallGraph::build(&ws);
        assert_eq!(g.callees_of(id_of(&ws, "f")), &[id_of(&ws, "grab")]);
    }

    #[test]
    fn unknown_macros_have_no_edges() {
        let ws = ws(&[("crates/a/src/lib.rs", "fn f() { vec![1, 2]; }")]);
        let g = CallGraph::build(&ws);
        assert!(g.callees_of(id_of(&ws, "f")).is_empty());
    }

    #[test]
    fn reachability_is_transitive_through_callers() {
        let ws = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { mid(); } fn mid() { sink(); } fn sink() {} fn other() {}",
        )]);
        let g = CallGraph::build(&ws);
        let sink = id_of(&ws, "sink");
        let reach = g.reaches(&ws, |id| id == sink);
        assert!(reach.contains(&id_of(&ws, "top")));
        assert!(reach.contains(&id_of(&ws, "mid")));
        assert!(!reach.contains(&id_of(&ws, "other")));
    }
}
