//! `cargo xtask bench-gate` — fail when the harvest fast path regresses.
//!
//! Compares the `fig8_throughput.fast_ns_per_read` of a freshly
//! produced `BENCH_harvest.json` against the recorded baseline (the
//! committed report, snapshotted before the bench run overwrites it)
//! and exits non-zero when the per-READ cost implies a throughput
//! regression beyond the allowed fraction. Per-READ cost is the
//! scale-independent metric: the quick and full bench scales run the
//! same steady-state loop and differ only in pass count, so CI's quick
//! run gates against the committed full-scale number.
//!
//! The report format is the two-level `{section: {key: number}}` JSON
//! that `drange-bench`'s hand-rolled `BenchReport` emits; the parser
//! here accepts exactly that shape (plus string values, skipped) and
//! rejects anything deeper, so a corrupted report fails the gate
//! loudly instead of green-lighting a regression.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The gated metric: lower is better (ns of wall time per sensed READ
/// on the memoizing fast path).
const SECTION: &str = "fig8_throughput";
const KEY: &str = "fast_ns_per_read";

/// Default allowed throughput regression (fraction). Throughput is
/// 1/ns_per_read, so a 10 % throughput loss corresponds to a ~11.1 %
/// ns/READ increase — the gate converts accordingly.
const DEFAULT_MAX_REGRESSION: f64 = 0.10;

/// Parses the `{section: {key: value}}` report shape into a flat map.
/// String values are tolerated (and ignored by the gate); any other
/// nesting is an error.
pub fn parse_report(text: &str) -> Result<BTreeMap<(String, String), f64>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    p.ws();
    p.expect(b'{')?;
    p.ws();
    if p.peek() == Some(b'}') {
        p.expect(b'}')?;
        return Ok(out);
    }
    loop {
        p.ws();
        let section = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        p.expect(b'{')?;
        p.ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
        } else {
            loop {
                p.ws();
                let key = p.string()?;
                p.ws();
                p.expect(b':')?;
                p.ws();
                match p.peek() {
                    Some(b'"') => {
                        p.string()?; // string metric: not gateable, skip
                    }
                    _ => {
                        let value = p.number()?;
                        out.insert((section.clone(), key), value);
                    }
                }
                p.ws();
                match p.next_byte()? {
                    b',' => continue,
                    b'}' => break,
                    c => {
                        return Err(format!(
                            "expected `,` or `}}` in section, got `{}`",
                            c as char
                        ))
                    }
                }
            }
        }
        p.ws();
        match p.next_byte()? {
            b',' => continue,
            b'}' => break,
            c => {
                return Err(format!(
                    "expected `,` or `}}` at top level, got `{}`",
                    c as char
                ))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of report")?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next_byte()? {
            b if b == want => Ok(()),
            b => Err(format!("expected `{}`, got `{}`", want as char, b as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next_byte()? {
                b'"' => return Ok(s),
                b'\\' => {
                    // BenchReport only escapes `"`, `\` and control
                    // characters; pass the escaped byte through and
                    // keep `\uXXXX` opaque (keys are never gated on).
                    let e = self.next_byte()?;
                    s.push(e as char);
                }
                b => s.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF8 number token".to_string())?;
        tok.parse::<f64>()
            .map_err(|e| format!("bad number `{tok}`: {e}"))
    }
}

/// Runs the gate: `Ok(summary)` when the current fast path is within
/// the allowed regression of the baseline, `Err(reason)` otherwise
/// (including unreadable/ill-formed reports and missing metrics — a
/// gate that cannot measure must not pass).
pub fn gate(baseline: &str, current: &str, max_regression: f64) -> Result<String, String> {
    if !(0.0..1.0).contains(&max_regression) {
        return Err(format!(
            "--max-regression must be in [0, 1), got {max_regression}"
        ));
    }
    let metric = |text: &str, which: &str| -> Result<f64, String> {
        let report = parse_report(text).map_err(|e| format!("{which} report: {e}"))?;
        report
            .get(&(SECTION.to_string(), KEY.to_string()))
            .copied()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("{which} report has no usable `{SECTION}.{KEY}`"))
    };
    let base_ns = metric(baseline, "baseline")?;
    let cur_ns = metric(current, "current")?;
    // throughput ∝ 1/ns_per_read: a `max_regression` throughput loss
    // allows ns/READ up to baseline / (1 - max_regression).
    let allowed_ns = base_ns / (1.0 - max_regression);
    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "bench-gate: {SECTION}.{KEY} baseline {base_ns:.1} ns, current {cur_ns:.1} ns \
         (allowed ≤ {allowed_ns:.1} ns for a ≤{:.0}% throughput regression)",
        max_regression * 100.0
    );
    if cur_ns > allowed_ns {
        let loss = (1.0 - base_ns / cur_ns) * 100.0;
        Err(format!(
            "{summary}fast path regressed: {cur_ns:.1} ns/READ is a {loss:.1}% throughput \
             loss vs the recorded baseline ({base_ns:.1} ns)"
        ))
    } else {
        let _ = write!(
            summary,
            "bench-gate: OK ({:+.1}% throughput vs baseline)",
            (base_ns / cur_ns - 1.0) * 100.0
        );
        Ok(summary)
    }
}

/// CLI front-end: `bench-gate --baseline FILE --current FILE
/// [--max-regression FRACTION]`.
pub fn command(args: &[String]) -> i32 {
    let mut baseline = None;
    let mut current = None;
    let mut max_regression = DEFAULT_MAX_REGRESSION;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = it.next().cloned(),
            "--current" => current = it.next().cloned(),
            "--max-regression" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) => max_regression = v,
                _ => {
                    eprintln!("bench-gate: --max-regression needs a numeric fraction");
                    return 2;
                }
            },
            other => {
                eprintln!("bench-gate: unknown argument `{other}`");
                return 2;
            }
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        eprintln!("usage: cargo xtask bench-gate --baseline FILE --current FILE [--max-regression FRACTION]");
        return 2;
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let result = read(&baseline).and_then(|b| {
        let c = read(&current)?;
        gate(&b, &c, max_regression)
    });
    match result {
        Ok(summary) => {
            println!("{summary}");
            0
        }
        Err(reason) => {
            eprintln!("bench-gate: FAIL\n{reason}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(fast_ns: f64) -> String {
        format!(
            "{{\n  \"fig8_throughput\": {{\n    \"fast_ns_per_read\": {fast_ns},\n    \
             \"speedup\": 5.1\n  }},\n  \"simd\": {{\n    \"lane_utilization\": 1\n  }}\n}}"
        )
    }

    #[test]
    fn parses_the_bench_report_shape() {
        let map = parse_report(&report(352.5)).expect("parses");
        assert_eq!(
            map[&("fig8_throughput".into(), "fast_ns_per_read".into())],
            352.5
        );
        assert_eq!(map[&("simd".into(), "lane_utilization".into())], 1.0);
        assert!(parse_report("{}").expect("empty object").is_empty());
    }

    #[test]
    fn tolerates_string_values_and_escapes() {
        let text = "{\"s\": {\"note\": \"a \\\"quoted\\\" label\", \"v\": -1.5e2}}";
        let map = parse_report(text).expect("parses");
        assert_eq!(map[&("s".into(), "v".into())], -150.0);
        assert_eq!(map.len(), 1, "string metrics are skipped, not gated");
    }

    #[test]
    fn rejects_malformed_reports() {
        for bad in ["", "{", "{\"a\": 1}", "{\"a\": {\"b\": }}", "[1, 2]"] {
            assert!(parse_report(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn passes_within_the_allowed_regression() {
        // 10% throughput regression allows ns/READ up to base/0.9.
        let ok = gate(&report(100.0), &report(110.0), 0.10).expect("within bound");
        assert!(ok.contains("OK"), "{ok}");
        gate(&report(100.0), &report(90.0), 0.10).expect("improvement passes");
    }

    #[test]
    fn fails_beyond_the_allowed_regression() {
        let err = gate(&report(100.0), &report(112.0), 0.10).expect_err("beyond bound");
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn fails_when_the_metric_is_missing_or_unusable() {
        let no_metric = "{\"other\": {\"k\": 1}}";
        assert!(gate(no_metric, &report(100.0), 0.10).is_err());
        assert!(gate(&report(100.0), no_metric, 0.10).is_err());
        assert!(
            gate(&report(0.0), &report(100.0), 0.10).is_err(),
            "zero baseline"
        );
        assert!(
            gate(&report(100.0), &report(100.0), 1.5).is_err(),
            "bad fraction"
        );
    }
}
