//! `cargo xtask bench-gate` — fail when a gated bench metric regresses.
//!
//! Compares a freshly produced `BENCH_harvest.json` against the
//! recorded baseline (the committed report, snapshotted before the
//! bench run overwrites it) and exits non-zero when any gate fails:
//!
//! * `fig8_throughput.fast_ns_per_read` — the harvest fast path's
//!   per-READ cost (lower is better). Per-READ cost is the
//!   scale-independent metric: the quick and full bench scales run the
//!   same steady-state loop and differ only in pass count, so CI's
//!   quick run gates against the committed full-scale number.
//! * `drbg.fast_serve_mbps` — the conditioning tier's serve rate
//!   (higher is better), held to the same allowed-regression fraction.
//! * the tier split: the current report's `drbg.fast_serve_mbps` must
//!   be at least 10x its `drbg.raw_serve_mbps` — the fast tier exists
//!   to decouple serve rate from harvest rate, and a fast path within
//!   10x of raw has silently re-coupled them.
//!
//! The report format is the two-level `{section: {key: number}}` JSON
//! that `drange-bench`'s hand-rolled `BenchReport` emits; the parser
//! here accepts exactly that shape (plus string values, skipped) and
//! rejects anything deeper, so a corrupted report fails the gate
//! loudly instead of green-lighting a regression.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The harvest gate: lower is better (ns of wall time per sensed READ
/// on the memoizing fast path).
const SECTION: &str = "fig8_throughput";
const KEY: &str = "fast_ns_per_read";

/// The conditioning-tier gate: higher is better (sustained Mbit/s of
/// single-threaded DRBG serve), plus the in-report tier split.
const DRBG_SECTION: &str = "drbg";
const DRBG_FAST_KEY: &str = "fast_serve_mbps";
const DRBG_RAW_KEY: &str = "raw_serve_mbps";

/// Minimum ratio of `fast_serve_mbps` over `raw_serve_mbps` in the
/// *current* report: the fast tier must outserve raw harvest by at
/// least this factor or the QoS split has lost its point.
const DRBG_MIN_TIER_SPLIT: f64 = 10.0;

/// Default allowed throughput regression (fraction). Throughput is
/// 1/ns_per_read, so a 10 % throughput loss corresponds to a ~11.1 %
/// ns/READ increase — the gate converts accordingly.
const DEFAULT_MAX_REGRESSION: f64 = 0.10;

/// Parses the `{section: {key: value}}` report shape into a flat map.
/// String values are tolerated (and ignored by the gate); any other
/// nesting is an error.
pub fn parse_report(text: &str) -> Result<BTreeMap<(String, String), f64>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut out = BTreeMap::new();
    p.ws();
    p.expect(b'{')?;
    p.ws();
    if p.peek() == Some(b'}') {
        p.expect(b'}')?;
        return Ok(out);
    }
    loop {
        p.ws();
        let section = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        p.expect(b'{')?;
        p.ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
        } else {
            loop {
                p.ws();
                let key = p.string()?;
                p.ws();
                p.expect(b':')?;
                p.ws();
                match p.peek() {
                    Some(b'"') => {
                        p.string()?; // string metric: not gateable, skip
                    }
                    _ => {
                        let value = p.number()?;
                        out.insert((section.clone(), key), value);
                    }
                }
                p.ws();
                match p.next_byte()? {
                    b',' => continue,
                    b'}' => break,
                    c => {
                        return Err(format!(
                            "expected `,` or `}}` in section, got `{}`",
                            c as char
                        ))
                    }
                }
            }
        }
        p.ws();
        match p.next_byte()? {
            b',' => continue,
            b'}' => break,
            c => {
                return Err(format!(
                    "expected `,` or `}}` at top level, got `{}`",
                    c as char
                ))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of report")?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next_byte()? {
            b if b == want => Ok(()),
            b => Err(format!("expected `{}`, got `{}`", want as char, b as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next_byte()? {
                b'"' => return Ok(s),
                b'\\' => {
                    // BenchReport only escapes `"`, `\` and control
                    // characters; pass the escaped byte through and
                    // keep `\uXXXX` opaque (keys are never gated on).
                    let e = self.next_byte()?;
                    s.push(e as char);
                }
                b => s.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF8 number token".to_string())?;
        tok.parse::<f64>()
            .map_err(|e| format!("bad number `{tok}`: {e}"))
    }
}

/// Runs every gate: `Ok(summary)` when the current report is within
/// the allowed regression of the baseline on all gated metrics and
/// satisfies the tier-split invariant, `Err(reason)` otherwise
/// (including unreadable/ill-formed reports and missing metrics — a
/// gate that cannot measure must not pass).
pub fn gate(baseline: &str, current: &str, max_regression: f64) -> Result<String, String> {
    if !(0.0..1.0).contains(&max_regression) {
        return Err(format!(
            "--max-regression must be in [0, 1), got {max_regression}"
        ));
    }
    let base_map = parse_report(baseline).map_err(|e| format!("baseline report: {e}"))?;
    let cur_map = parse_report(current).map_err(|e| format!("current report: {e}"))?;
    let metric = |map: &BTreeMap<(String, String), f64>,
                  which: &str,
                  section: &str,
                  key: &str|
     -> Result<f64, String> {
        map.get(&(section.to_string(), key.to_string()))
            .copied()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("{which} report has no usable `{section}.{key}`"))
    };

    let mut summary = String::new();
    let mut failures = String::new();

    // Gate 1: harvest fast path, lower is better. throughput ∝
    // 1/ns_per_read: a `max_regression` throughput loss allows ns/READ
    // up to baseline / (1 - max_regression).
    let base_ns = metric(&base_map, "baseline", SECTION, KEY)?;
    let cur_ns = metric(&cur_map, "current", SECTION, KEY)?;
    let allowed_ns = base_ns / (1.0 - max_regression);
    let _ = writeln!(
        summary,
        "bench-gate: {SECTION}.{KEY} baseline {base_ns:.1} ns, current {cur_ns:.1} ns \
         (allowed ≤ {allowed_ns:.1} ns for a ≤{:.0}% throughput regression)",
        max_regression * 100.0
    );
    if cur_ns > allowed_ns {
        let loss = (1.0 - base_ns / cur_ns) * 100.0;
        let _ = writeln!(
            failures,
            "fast path regressed: {cur_ns:.1} ns/READ is a {loss:.1}% throughput \
             loss vs the recorded baseline ({base_ns:.1} ns)"
        );
    }

    // Gate 2: conditioning tier serve rate, higher is better.
    let base_mbps = metric(&base_map, "baseline", DRBG_SECTION, DRBG_FAST_KEY)?;
    let cur_mbps = metric(&cur_map, "current", DRBG_SECTION, DRBG_FAST_KEY)?;
    let floor_mbps = base_mbps * (1.0 - max_regression);
    let _ = writeln!(
        summary,
        "bench-gate: {DRBG_SECTION}.{DRBG_FAST_KEY} baseline {base_mbps:.0} Mbit/s, \
         current {cur_mbps:.0} Mbit/s (allowed ≥ {floor_mbps:.0} Mbit/s)",
    );
    if cur_mbps < floor_mbps {
        let loss = (1.0 - cur_mbps / base_mbps) * 100.0;
        let _ = writeln!(
            failures,
            "conditioning tier regressed: {cur_mbps:.0} Mbit/s is a {loss:.1}% serve-rate \
             loss vs the recorded baseline ({base_mbps:.0} Mbit/s)"
        );
    }

    // Gate 3: the tier split inside the current report.
    let cur_raw_mbps = metric(&cur_map, "current", DRBG_SECTION, DRBG_RAW_KEY)?;
    let split = cur_mbps / cur_raw_mbps;
    let _ = writeln!(
        summary,
        "bench-gate: tier split {split:.1}x (fast {cur_mbps:.0} / raw {cur_raw_mbps:.0} \
         Mbit/s, required ≥ {DRBG_MIN_TIER_SPLIT:.0}x)",
    );
    if split < DRBG_MIN_TIER_SPLIT {
        let _ = writeln!(
            failures,
            "tier split collapsed: fast serves only {split:.1}x raw (required ≥ \
             {DRBG_MIN_TIER_SPLIT:.0}x) — the fast tier has re-coupled to harvest rate"
        );
    }

    if failures.is_empty() {
        let _ = write!(
            summary,
            "bench-gate: OK ({:+.1}% harvest throughput, {:+.1}% fast serve rate vs baseline)",
            (base_ns / cur_ns - 1.0) * 100.0,
            (cur_mbps / base_mbps - 1.0) * 100.0
        );
        Ok(summary)
    } else {
        Err(format!("{summary}{failures}"))
    }
}

/// CLI front-end: `bench-gate --baseline FILE --current FILE
/// [--max-regression FRACTION]`.
pub fn command(args: &[String]) -> i32 {
    let mut baseline = None;
    let mut current = None;
    let mut max_regression = DEFAULT_MAX_REGRESSION;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = it.next().cloned(),
            "--current" => current = it.next().cloned(),
            "--max-regression" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) => max_regression = v,
                _ => {
                    eprintln!("bench-gate: --max-regression needs a numeric fraction");
                    return 2;
                }
            },
            other => {
                eprintln!("bench-gate: unknown argument `{other}`");
                return 2;
            }
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        eprintln!("usage: cargo xtask bench-gate --baseline FILE --current FILE [--max-regression FRACTION]");
        return 2;
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let result = read(&baseline).and_then(|b| {
        let c = read(&current)?;
        gate(&b, &c, max_regression)
    });
    match result {
        Ok(summary) => {
            println!("{summary}");
            0
        }
        Err(reason) => {
            eprintln!("bench-gate: FAIL\n{reason}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_report(fast_ns: f64, fast_mbps: f64, raw_mbps: f64) -> String {
        format!(
            "{{\n  \"fig8_throughput\": {{\n    \"fast_ns_per_read\": {fast_ns},\n    \
             \"speedup\": 5.1\n  }},\n  \"drbg\": {{\n    \"fast_serve_mbps\": {fast_mbps},\n    \
             \"raw_serve_mbps\": {raw_mbps}\n  }},\n  \"simd\": {{\n    \
             \"lane_utilization\": 1\n  }}\n}}"
        )
    }

    fn report(fast_ns: f64) -> String {
        full_report(fast_ns, 3000.0, 100.0)
    }

    #[test]
    fn parses_the_bench_report_shape() {
        let map = parse_report(&report(352.5)).expect("parses");
        assert_eq!(
            map[&("fig8_throughput".into(), "fast_ns_per_read".into())],
            352.5
        );
        assert_eq!(map[&("simd".into(), "lane_utilization".into())], 1.0);
        assert!(parse_report("{}").expect("empty object").is_empty());
    }

    #[test]
    fn tolerates_string_values_and_escapes() {
        let text = "{\"s\": {\"note\": \"a \\\"quoted\\\" label\", \"v\": -1.5e2}}";
        let map = parse_report(text).expect("parses");
        assert_eq!(map[&("s".into(), "v".into())], -150.0);
        assert_eq!(map.len(), 1, "string metrics are skipped, not gated");
    }

    #[test]
    fn rejects_malformed_reports() {
        for bad in ["", "{", "{\"a\": 1}", "{\"a\": {\"b\": }}", "[1, 2]"] {
            assert!(parse_report(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn passes_within_the_allowed_regression() {
        // 10% throughput regression allows ns/READ up to base/0.9.
        let ok = gate(&report(100.0), &report(110.0), 0.10).expect("within bound");
        assert!(ok.contains("OK"), "{ok}");
        gate(&report(100.0), &report(90.0), 0.10).expect("improvement passes");
    }

    #[test]
    fn fails_beyond_the_allowed_regression() {
        let err = gate(&report(100.0), &report(112.0), 0.10).expect_err("beyond bound");
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn fails_when_the_metric_is_missing_or_unusable() {
        let no_metric = "{\"other\": {\"k\": 1}}";
        assert!(gate(no_metric, &report(100.0), 0.10).is_err());
        assert!(gate(&report(100.0), no_metric, 0.10).is_err());
        assert!(
            gate(&report(0.0), &report(100.0), 0.10).is_err(),
            "zero baseline"
        );
        assert!(
            gate(&report(100.0), &report(100.0), 1.5).is_err(),
            "bad fraction"
        );
        // A report without the drbg section cannot pass either side.
        let fig8_only = "{\"fig8_throughput\": {\"fast_ns_per_read\": 100.0}}";
        let err = gate(fig8_only, &report(100.0), 0.10).expect_err("missing drbg baseline");
        assert!(err.contains("drbg.fast_serve_mbps"), "{err}");
        assert!(gate(&report(100.0), fig8_only, 0.10).is_err());
    }

    #[test]
    fn gates_the_conditioning_tier_serve_rate() {
        // A 5% serve-rate dip passes the 10% gate; a 20% dip fails it.
        let base = full_report(100.0, 3000.0, 100.0);
        gate(&base, &full_report(100.0, 2850.0, 100.0), 0.10).expect("within bound");
        let err = gate(&base, &full_report(100.0, 2400.0, 100.0), 0.10)
            .expect_err("serve-rate regression");
        assert!(err.contains("conditioning tier regressed"), "{err}");
        // Improvements pass and are reported.
        let ok = gate(&base, &full_report(100.0, 4000.0, 100.0), 0.10).expect("improvement");
        assert!(ok.contains("OK"), "{ok}");
    }

    #[test]
    fn enforces_the_tier_split_in_the_current_report() {
        let base = full_report(100.0, 3000.0, 100.0);
        // fast = 9x raw: the serve rate is fine vs baseline (higher,
        // even), but the split invariant fails.
        let err = gate(&base, &full_report(100.0, 3600.0, 400.0), 0.10)
            .expect_err("collapsed tier split");
        assert!(err.contains("tier split collapsed"), "{err}");
        // Exactly 10x passes.
        gate(&base, &full_report(100.0, 4000.0, 400.0), 0.10).expect("10x split passes");
    }

    #[test]
    fn reports_every_failing_gate_at_once() {
        let base = full_report(100.0, 3000.0, 100.0);
        let err =
            gate(&base, &full_report(150.0, 900.0, 100.0), 0.10).expect_err("both gates fail");
        assert!(err.contains("fast path regressed"), "{err}");
        assert!(err.contains("conditioning tier regressed"), "{err}");
    }
}
