//! Workspace automation: `cargo xtask lint`, `cargo xtask analyze`,
//! `cargo xtask check-trace`, and `cargo xtask bench-gate`.
//!
//! `bench-gate` guards the recorded harvest-throughput baseline: CI's
//! bench-smoke job snapshots the committed `BENCH_harvest.json`, runs
//! the quick-scale fig8 bench, and fails the job when the fast-path
//! per-READ cost implies a throughput regression beyond the bound
//! (see [`benchgate`]).
//!
//! `check-trace` validates Chrome trace-event JSON captured from the
//! server's `GET /debug/trace` endpoint (see [`tracecheck`]); CI's
//! server-smoke job pipes a live capture through it.
//!
//! `lint` is a dependency-free, token-level pass enforcing the domain
//! rules the compiler cannot see (see [`rules`] for the rule set and
//! `xtask/lint_policy.toml` for the allowlists). `analyze` builds an
//! item-level front-end over the same lexer ([`parse`], [`symbols`],
//! [`callgraph`]) and runs whole-workspace semantic checks: entropy
//! taint, lock ordering, and the atomics-ordering policy (see
//! [`analyses`]). Scope for both: library code under `crates/*/src/`,
//! excluding binaries (`src/bin/`, `src/main.rs`) and anything behind
//! `#[cfg(test)]` / `#[test]`.
//!
//! Individual findings can be waived at the call site with
//! `// xtask:allow(<rule>) -- <reason>` on the same line or the line
//! above; a waiver without a reason is itself an error. Each pass
//! applies (and audits for staleness) only waivers naming its own
//! rules, so a lint run never flags an analyze waiver as unused and
//! vice versa.

pub mod analyses;
pub mod benchgate;
pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod parse;
pub mod policy;
pub mod rules;
pub mod symbols;
pub mod tracecheck;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use diag::Format;
pub use policy::Policy;
pub use rules::{Diagnostic, ANALYZE_RULE_NAMES, LINT_RULE_NAMES, RULE_NAMES};

/// Entry point for the `xtask` binary. Returns the process exit code.
pub fn run<I: IntoIterator<Item = String>>(args: I) -> i32 {
    let args: Vec<String> = args.into_iter().collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some("analyze") => analyze_command(&args[1..]),
        Some("check-trace") => check_trace_command(&args[1..]),
        Some("bench-gate") => benchgate::command(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n{USAGE}");
            2
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--root DIR] [--format text|json|github]
                      run the token-level domain lint pass over
                      crates/*/src (policy: xtask/lint_policy.toml)
  analyze [--root DIR] [--format text|json|github]
                      run the cross-crate semantic analyses (entropy
                      taint, lock order, atomics-ordering policy)
  check-trace [FILE]  validate Chrome trace-event JSON (from FILE, or
                      stdin when FILE is `-` or omitted) as exported
                      by GET /debug/trace
  bench-gate --baseline FILE --current FILE [--max-regression FRACTION]
                      compare a fresh BENCH_harvest.json against the
                      recorded baseline; fail when the fig8 fast-path
                      throughput regressed beyond the bound (default
                      0.10)";

fn check_trace_command(args: &[String]) -> i32 {
    let input = match args {
        [] => read_stdin(),
        [path] if path == "-" => read_stdin(),
        [path] => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        _ => Err("check-trace takes at most one FILE argument".into()),
    };
    let input = match input {
        Ok(input) => input,
        Err(e) => {
            eprintln!("xtask check-trace: {e}");
            return 2;
        }
    };
    match tracecheck::check_trace(&input) {
        Ok(summary) => {
            eprintln!("xtask check-trace: ok — {summary}");
            0
        }
        Err(e) => {
            eprintln!("xtask check-trace: {e}");
            1
        }
    }
}

fn read_stdin() -> Result<String, String> {
    use std::io::Read as _;
    let mut buf = String::new();
    std::io::stdin()
        .read_to_string(&mut buf)
        .map_err(|e| format!("cannot read stdin: {e}"))?;
    Ok(buf)
}

fn lint_command(args: &[String]) -> i32 {
    run_pass("lint", args, lint_workspace)
}

fn analyze_command(args: &[String]) -> i32 {
    run_pass("analyze", args, analyze_workspace)
}

/// Shared command plumbing for `lint` and `analyze`: `--root` /
/// `--format` parsing, rendering, and exit-code mapping (0 clean,
/// 1 findings, 2 usage or I/O error).
fn run_pass(
    name: &str,
    args: &[String],
    pass: fn(&Path) -> Result<Vec<Diagnostic>, String>,
) -> i32 {
    let mut root = PathBuf::from(".");
    let mut format = Format::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("xtask {name}: --root needs a directory");
                    return 2;
                }
            },
            "--format" => match it.next().map(|f| Format::parse(f)) {
                Some(Ok(f)) => format = f,
                Some(Err(e)) => {
                    eprintln!("xtask {name}: {e}");
                    return 2;
                }
                None => {
                    eprintln!("xtask {name}: --format needs a value (text, json, github)");
                    return 2;
                }
            },
            other => {
                eprintln!("xtask {name}: unknown argument `{other}`");
                return 2;
            }
        }
    }
    match pass(&root) {
        Ok(diags) => {
            let rendered = diag::render(&diags, format);
            if !rendered.is_empty() {
                print!("{rendered}");
            }
            if diags.is_empty() {
                eprintln!("xtask {name}: clean");
                0
            } else {
                eprintln!("xtask {name}: {} finding(s)", diags.len());
                1
            }
        }
        Err(e) => {
            eprintln!("xtask {name}: {e}");
            2
        }
    }
}

/// Lints every in-scope file under `root`, returning the surviving
/// diagnostics (waived findings removed, bad waivers added), plus an
/// audit of the policy file itself: every path listed in
/// `lint_policy.toml` must still exist on disk, or the entry has
/// rotted and silently allows nothing (or will silently allow a future
/// file nobody reviewed).
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let (policy, policy_text) = load_policy(root)?;

    let mut diags = Vec::new();
    for (relpath, source) in load_workspace_sources(root)? {
        diags.extend(lint_source(&relpath, &source, &policy));
    }

    for (key, path) in policy.all_entries() {
        if !root.join(path).exists() {
            diags.push(Diagnostic {
                file: "xtask/lint_policy.toml".to_string(),
                line: policy_entry_line(&policy_text, path),
                rule: "stale-policy-path",
                message: format!(
                    "[{key}] lists `{path}`, which no longer exists; remove the \
                     entry or fix the path"
                ),
            });
        }
    }
    Ok(diags)
}

/// Runs the semantic analyses over every in-scope file under `root`,
/// returning the surviving diagnostics (waivers applied per analyze
/// rule).
pub fn analyze_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let (policy, _) = load_policy(root)?;
    let sources = load_workspace_sources(root)?;
    Ok(analyze_source_set(&sources, &policy))
}

/// Analyzes a set of `(relpath, source)` files as one workspace and
/// applies analyze-scoped waivers (pure; used by the fixture tests).
pub fn analyze_source_set(sources: &[(String, String)], policy: &Policy) -> Vec<Diagnostic> {
    let raw = analyses::analyze_sources(sources, policy);
    let mut by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for d in raw {
        by_file.entry(d.file.clone()).or_default().push(d);
    }
    let mut out = Vec::new();
    for (relpath, source) in sources {
        let raw_for_file = by_file.remove(relpath.as_str()).unwrap_or_default();
        out.extend(apply_waivers(
            relpath,
            source,
            raw_for_file,
            WaiverScope::Analyze,
        ));
    }
    // Findings for files outside `sources` cannot happen (analyses only
    // see parsed sources), but never drop a diagnostic on the floor.
    out.extend(by_file.into_values().flatten());
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Reads and parses `xtask/lint_policy.toml` under `root`.
fn load_policy(root: &Path) -> Result<(Policy, String), String> {
    let policy_path = root.join("xtask/lint_policy.toml");
    let policy_text = std::fs::read_to_string(&policy_path)
        .map_err(|e| format!("cannot read {}: {e}", policy_path.display()))?;
    let policy =
        Policy::parse(&policy_text).map_err(|e| format!("{}: {e}", policy_path.display()))?;
    Ok((policy, policy_text))
}

/// Collects every in-scope file under `root` with its contents, sorted
/// by path.
fn load_workspace_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut sources = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let relpath = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((relpath, source));
    }
    Ok(sources)
}

/// The 1-based line on which a policy path literal appears (for
/// stale-entry diagnostics); line 1 when not found (multi-line arrays
/// aside, every entry is written as a quoted literal).
fn policy_entry_line(policy_text: &str, path: &str) -> u32 {
    let needle = format!("\"{path}\"");
    for (idx, line) in policy_text.lines().enumerate() {
        if line.contains(&needle) {
            return idx as u32 + 1;
        }
    }
    1
}

/// Lints one file's source text (pure; used by the fixture tests).
pub fn lint_source(relpath: &str, source: &str, policy: &Policy) -> Vec<Diagnostic> {
    let toks = lexer::scan(source);
    let mask = lexer::test_mask(&toks);
    let mut raw = Vec::new();
    rules::check_file(relpath, &toks, &mask, policy, &mut raw);
    apply_waivers(relpath, source, raw, WaiverScope::Lint)
}

/// In-scope: `.rs` files under a crate's `src/`, excluding binary
/// roots — the rules target library code that other crates link.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "bin" {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") && name != "main.rs" {
            out.push(path);
        }
    }
    Ok(())
}

/// Which pass is applying waivers; each pass only registers (and
/// audits staleness of) waivers naming its own rules, while syntax
/// problems — malformed markers, unknown rules, missing reasons — are
/// reported by the lint pass alone so they surface exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaiverScope {
    /// `cargo xtask lint`: token-level rules.
    Lint,
    /// `cargo xtask analyze`: semantic rules.
    Analyze,
}

impl WaiverScope {
    fn rules(self) -> &'static [&'static str] {
        match self {
            WaiverScope::Lint => LINT_RULE_NAMES,
            WaiverScope::Analyze => ANALYZE_RULE_NAMES,
        }
    }

    /// Only the lint pass reports waiver-syntax problems.
    fn audits_syntax(self) -> bool {
        self == WaiverScope::Lint
    }
}

/// Applies `// xtask:allow(<rule>) -- reason` waivers: a finding is
/// waived by a matching comment on its own line or the line directly
/// above. Waivers without a reason, naming an unknown rule, or waiving
/// nothing are reported as findings themselves (syntax problems by the
/// lint pass; staleness by whichever pass owns the named rule).
fn apply_waivers(
    relpath: &str,
    source: &str,
    raw: Vec<Diagnostic>,
    scope: WaiverScope,
) -> Vec<Diagnostic> {
    // (line, rule) → whether some finding actually used the waiver.
    let mut waivers: BTreeMap<(u32, String), bool> = BTreeMap::new();
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let Some(pos) = line.find("xtask:allow(") else {
            continue;
        };
        if !line[..pos].contains("//") {
            continue; // the marker only counts inside a comment
        }
        let rest = &line[pos + "xtask:allow(".len()..];
        let Some(close) = rest.find(')') else {
            if scope.audits_syntax() {
                out.push(Diagnostic {
                    file: relpath.to_string(),
                    line: lineno,
                    rule: "no-panic",
                    message: "malformed waiver: missing `)`".into(),
                });
            }
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let Some(matched) = RULE_NAMES.iter().find(|r| **r == rule) else {
            if scope.audits_syntax() {
                out.push(Diagnostic {
                    file: relpath.to_string(),
                    line: lineno,
                    rule: "no-panic",
                    message: format!(
                        "waiver names unknown rule `{rule}` (known: {})",
                        RULE_NAMES.join(", ")
                    ),
                });
            }
            continue;
        };
        let reason = rest[close + 1..].trim();
        let reason_ok = reason
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            // A reason-less waiver never suppresses; only lint reports
            // it so the finding appears once across both passes.
            if scope.audits_syntax() {
                out.push(Diagnostic {
                    file: relpath.to_string(),
                    line: lineno,
                    rule: matched,
                    message: "waiver has no justification: write \
                              `// xtask:allow(rule) -- why this site is safe`"
                        .into(),
                });
            }
            continue;
        }
        if scope.rules().contains(matched) {
            waivers.insert((lineno, rule), false);
        }
    }

    for d in raw {
        let mut waived = false;
        for probe in [d.line, d.line.saturating_sub(1)] {
            if let Some(used) = waivers.get_mut(&(probe, d.rule.to_string())) {
                *used = true;
                waived = true;
                break;
            }
        }
        if !waived {
            out.push(d);
        }
    }

    for ((lineno, rule), used) in waivers {
        if !used {
            out.push(Diagnostic {
                file: relpath.to_string(),
                line: lineno,
                rule: RULE_NAMES
                    .iter()
                    .find(|r| **r == rule)
                    .copied()
                    .unwrap_or("no-panic"),
                message: format!("waiver for `{rule}` matches no finding; remove it"),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> Policy {
        Policy::parse("[instant-hot-path]\nhot = [\"crates/core/src/engine.rs\"]\n")
            .expect("test policy")
    }

    #[test]
    fn waiver_suppresses_and_unused_waiver_reports() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // xtask:allow(no-panic) -- caller guarantees Some\n    x.unwrap()\n}\n";
        assert!(lint_source("crates/a/src/lib.rs", src, &policy()).is_empty());

        let unused = "fn f() {}\n// xtask:allow(no-panic) -- nothing here\n";
        let d = lint_source("crates/a/src/lib.rs", unused, &policy());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("matches no finding"));
    }

    #[test]
    fn waiver_without_reason_is_a_finding() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // xtask:allow(no-panic)\n}\n";
        let d = lint_source("crates/a/src/lib.rs", src, &policy());
        assert!(d.iter().any(|d| d.message.contains("no justification")));
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(lint_source("crates/a/src/lib.rs", src, &policy()).is_empty());
    }

    #[test]
    fn hot_path_scoping_is_per_file() {
        let src = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(
            lint_source("crates/core/src/engine.rs", src, &policy()).len(),
            1
        );
        assert!(lint_source("crates/core/src/other.rs", src, &policy()).is_empty());
    }
}
