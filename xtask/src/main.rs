//! Workspace automation entry point (`cargo xtask <command>`).

fn main() {
    std::process::exit(xtask::run(std::env::args().skip(1)));
}
