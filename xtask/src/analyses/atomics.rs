//! Atomics-ordering policy: every `Ordering::*` use must match the
//! per-file allow-table in `lint_policy.toml`.
//!
//! - `Relaxed` is legal only in files listed under `[atomics-policy]
//!   relaxed` — pure counters/gauges where no other memory depends on
//!   the value.
//! - `Acquire` / `Release` / `AcqRel` are legal only in files listed
//!   under `[atomics-policy] acquire-release` — documented
//!   publication protocols.
//! - `SeqCst` is never blanket-legal: each site needs an inline
//!   `// xtask:allow(atomics-policy) -- rationale` waiver, so every
//!   sequential-consistency dependency in the tree is written down.
//!
//! This pass scans the whole token stream (not just function bodies):
//! orderings in statics, consts, and default-parameter positions all
//! count. Only the five atomic variants match — `cmp::Ordering`'s
//! `Less`/`Equal`/`Greater` never collide.

use crate::parse::{ParsedFile, ATOMIC_ORDERINGS};
use crate::policy::Policy;
use crate::rules::Diagnostic;

/// Runs the atomics-ordering policy over every parsed file.
pub fn check(ws: &crate::symbols::Workspace<'_>, policy: &Policy, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        check_file(file, policy, out);
    }
}

fn check_file(file: &ParsedFile<'_>, policy: &Policy, out: &mut Vec<Diagnostic>) {
    let relpath = file.relpath.as_str();
    let relaxed_ok = policy.matches("atomics-policy", "relaxed", relpath);
    let acqrel_ok = policy.matches("atomics-policy", "acquire-release", relpath);
    for (i, t) in file.toks.iter().enumerate() {
        if !t.is_ident("Ordering")
            || file.mask.get(i).copied().unwrap_or(false)
            || !file.toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            || !file.toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            continue;
        }
        let Some(variant) = file
            .toks
            .get(i + 3)
            .filter(|v| ATOMIC_ORDERINGS.contains(&v.text))
        else {
            continue;
        };
        let allowed = match variant.text {
            "Relaxed" => relaxed_ok,
            "Acquire" | "Release" | "AcqRel" => acqrel_ok,
            _ => false, // SeqCst: per-site waiver only
        };
        if allowed {
            continue;
        }
        let remedy = match variant.text {
            "Relaxed" => {
                "list the file under [atomics-policy] relaxed in \
                 xtask/lint_policy.toml if it only carries counters"
            }
            "SeqCst" => {
                "SeqCst needs a per-site rationale: \
                 `// xtask:allow(atomics-policy) -- why seq-cst is required`"
            }
            _ => {
                "list the file under [atomics-policy] acquire-release in \
                 xtask/lint_policy.toml with the protocol documented"
            }
        };
        out.push(Diagnostic {
            file: relpath.to_string(),
            line: variant.line,
            rule: "atomics-policy",
            message: format!(
                "`Ordering::{}` not covered by the atomics policy; {remedy}",
                variant.text
            ),
        });
    }
}
