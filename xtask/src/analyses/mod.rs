//! The `cargo xtask analyze` semantic passes.
//!
//! Three whole-workspace analyses over the item-level front-end
//! ([`crate::parse`], [`crate::symbols`], [`crate::callgraph`]):
//!
//! - [`taint`] — entropy-flow taint: harvested bits must pass a
//!   `HealthMonitor::feed_*` call on every path to publication.
//! - [`lockorder`] — lock-acquisition ordering: potential-deadlock
//!   cycles, re-acquisition of a held lock, and condvar waits that are
//!   not re-checked in a loop.
//! - [`atomics`] — every `Ordering::*` use must match the per-file
//!   allow-table in `lint_policy.toml` `[atomics-policy]`; `SeqCst`
//!   always requires a per-site waiver with a rationale.
//!
//! Files matching `[analyze] exclude` in the policy are not parsed at
//! all (loomlite deliberately shadows `std::sync` names and would
//! poison name-based resolution).

pub mod atomics;
pub mod lockorder;
pub mod taint;

use crate::callgraph::CallGraph;
use crate::parse;
use crate::policy::Policy;
use crate::rules::Diagnostic;
use crate::symbols::Workspace;

/// Runs all three analyses over `(relpath, source)` pairs, returning
/// raw findings (waivers not yet applied), sorted by file then line.
pub fn analyze_sources(sources: &[(String, String)], policy: &Policy) -> Vec<Diagnostic> {
    let files: Vec<parse::ParsedFile<'_>> = sources
        .iter()
        .filter(|(relpath, _)| !policy.matches("analyze", "exclude", relpath))
        .map(|(relpath, source)| parse::parse(relpath, source))
        .collect();
    let ws = Workspace::new(files);
    let graph = CallGraph::build(&ws);

    let mut out = Vec::new();
    taint::check(&ws, &graph, policy, &mut out);
    lockorder::check(&ws, &mut out);
    atomics::check(&ws, policy, &mut out);
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    out.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    out
}
