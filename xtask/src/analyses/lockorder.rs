//! Lock-order analysis: potential-deadlock cycles, re-acquisition of a
//! held lock, and condvar waits outside a re-check loop.
//!
//! **Lock identity.** An acquisition is a zero-argument `.lock()` /
//! `.read()` / `.write()` method call; the lock is named by the
//! identifier directly left of the method (`shared.pool.lock()` →
//! `pool`), qualified by the acquiring file's crate (`core:pool`) so
//! same-named fields in different crates do not alias. Acquisitions
//! whose receiver is a non-trivial expression are invisible — name
//! your mutex fields.
//!
//! **Guard lifetime** is tracked linearly through each body: a
//! let-bound guard lives to the end of its enclosing block (or an
//! explicit `drop(name)`); a temporary lives to the end of its
//! statement. Branches are walked in source order as if all executed,
//! which over-approximates (an early `return` inside a branch does not
//! release earlier guards for the remainder of the walk).
//!
//! **Edges.** Acquiring `B` while holding `A` records `A → B`; calling
//! a workspace function `g` while holding `A` records `A → L` for
//! every lock `L` in `g`'s transitive acquisition summary. A cycle in
//! the resulting graph is a potential deadlock. A local `macro_rules!`
//! whose summary is a single lock (the telemetry recorder's
//! `lock_state!`) is treated as acquiring that lock directly, so its
//! let-bound guards participate.
//!
//! **Call resolution** here is deliberately narrower than the taint
//! pass's name-based call graph: a method call resolves only through
//! `self` (to the caller's own impl type), a qualified call
//! (`Type::f(..)`) only to an impl of that type, and a bare call only
//! to free functions. Everything else — `Vec::new()`, a closure
//! parameter invoked by name, `other.helper()` — is treated as
//! external. Lock summaries flow along these edges; inventing an edge
//! through a ubiquitous name like `new` would union unrelated
//! summaries into every constructor and drown the report in false
//! cycles, so the analysis prefers a missed edge to a fabricated one.
//!
//! **Condvar discipline.** `.wait(..)` / `.wait_timeout(..)` /
//! `.wait_until(..)` / `.wait_for(..)` must appear inside a
//! `loop`/`while`/`for` so the predicate is re-checked after a wakeup;
//! `wait_while`-style calls carry their own loop and are exempt.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::parse::{self, CallSite, EventKind};
use crate::rules::Diagnostic;
use crate::symbols::{FnId, Workspace};

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_until", "wait_for"];

/// One edge site: where the second lock of the pair was taken.
type EdgeSite = (String, u32);

/// Runs the lock-order analysis over the workspace.
pub fn check(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    // Direct acquisition sets and conservative callee lists per item.
    let mut direct: HashMap<FnId, BTreeSet<String>> = HashMap::new();
    let mut callees: HashMap<FnId, Vec<FnId>> = HashMap::new();
    for id in ws.all_ids() {
        let mut set = BTreeSet::new();
        let mut outs: Vec<FnId> = Vec::new();
        for ev in parse::body_events(ws.file(id), ws.item(id)) {
            if let EventKind::Call(c) = ev.kind {
                if let Some(lock) = acquisition(ws, id, &c) {
                    set.insert(lock);
                } else {
                    outs.extend(lock_callees(ws, id, &c));
                }
            }
        }
        outs.sort_unstable();
        outs.dedup();
        direct.insert(id, set);
        callees.insert(id, outs);
    }

    // Transitive summaries: locks an item may acquire, via any callee.
    let mut summary = direct;
    loop {
        let mut changed = false;
        for id in ws.all_ids() {
            let mut add: Vec<String> = Vec::new();
            for callee in &callees[&id] {
                if let Some(s) = summary.get(callee) {
                    add.extend(s.iter().filter(|l| !summary[&id].contains(*l)).cloned());
                }
            }
            if !add.is_empty() {
                changed = true;
                if let Some(s) = summary.get_mut(&id) {
                    s.extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Held-lock simulation per item: edges + per-site findings.
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for id in ws.all_ids() {
        if ws.item(id).test {
            continue;
        }
        simulate(ws, &summary, id, &mut edges, out);
    }

    report_cycles(&edges, out);
}

/// The lock id acquired by a call site, if it is an acquisition.
fn acquisition(ws: &Workspace<'_>, id: FnId, c: &CallSite<'_>) -> Option<String> {
    if c.is_method && c.zero_args && ACQUIRE_METHODS.contains(&c.name) {
        return c.recv.map(|r| format!("{}:{}", ws.crate_of(id), r));
    }
    None
}

/// A guard currently held during the linear walk of one body.
struct Guard<'a> {
    lock: String,
    binding: Option<&'a str>,
    depth: u32,
}

fn simulate(
    ws: &Workspace<'_>,
    summary: &HashMap<FnId, BTreeSet<String>>,
    id: FnId,
    edges: &mut BTreeMap<(String, String), EdgeSite>,
    out: &mut Vec<Diagnostic>,
) {
    let item = ws.item(id);
    let file = ws.path(id).to_string();
    let events = parse::body_events(ws.file(id), item);
    let mut held: Vec<Guard<'_>> = Vec::new();
    let mut pending_let: Option<&str> = None;
    // One re-acquire-via-call finding per (line, lock), however many
    // same-named targets the call resolves to.
    let mut reported: BTreeSet<(u32, String)> = BTreeSet::new();

    for ev in &events {
        match ev.kind {
            EventKind::Let(name) => pending_let = Some(name),
            EventKind::Open => pending_let = None,
            EventKind::Close => {
                held.retain(|g| g.depth <= ev.depth);
                pending_let = None;
            }
            EventKind::Semi => {
                held.retain(|g| g.binding.is_some() || g.depth < ev.depth);
                pending_let = None;
            }
            EventKind::Drop(name) => {
                if let Some(pos) = held.iter().rposition(|g| g.binding == Some(name)) {
                    held.remove(pos);
                }
            }
            EventKind::Call(c) => {
                if c.is_method && WAIT_METHODS.contains(&c.name) && ev.loop_depth == 0 {
                    out.push(Diagnostic {
                        file: file.clone(),
                        line: ev.line,
                        rule: "condvar-loop",
                        message: format!(
                            ".{}() outside a loop: condvar wakeups are spurious-prone, \
                             re-check the predicate in a `while`/`loop` (or use a \
                             `wait_while` form)",
                            c.name
                        ),
                    });
                }
                if let Some(lock) = direct_or_macro_acquisition(ws, summary, id, &c) {
                    if let Some(prior) = held.iter().find(|g| g.lock == lock) {
                        out.push(Diagnostic {
                            file: file.clone(),
                            line: ev.line,
                            rule: "lock-order",
                            message: format!(
                                "re-acquires `{lock}` while already held (guard{}); \
                                 self-deadlock with a non-reentrant lock",
                                prior.binding.map(|b| format!(" `{b}`")).unwrap_or_default()
                            ),
                        });
                    } else {
                        for g in &held {
                            edges
                                .entry((g.lock.clone(), lock.clone()))
                                .or_insert_with(|| (file.clone(), ev.line));
                        }
                        held.push(Guard {
                            lock,
                            binding: pending_let.take(),
                            depth: ev.depth,
                        });
                    }
                } else if !held.is_empty() {
                    // Interprocedural: a held lock vs. everything the
                    // callee may acquire, along the conservative edges
                    // only (see module docs — a `Vec::new()` must not
                    // inherit some constructor's lock summary).
                    for target in lock_callees(ws, id, &c) {
                        for l in summary.get(&target).into_iter().flatten() {
                            if held.iter().any(|g| g.lock == *l) {
                                if reported.insert((ev.line, l.clone())) {
                                    out.push(Diagnostic {
                                        file: file.clone(),
                                        line: ev.line,
                                        rule: "lock-order",
                                        message: format!(
                                            "calls `{}` which may re-acquire held `{l}`; \
                                             self-deadlock with a non-reentrant lock",
                                            c.name
                                        ),
                                    });
                                }
                            } else {
                                for g in &held {
                                    edges
                                        .entry((g.lock.clone(), l.clone()))
                                        .or_insert_with(|| (file.clone(), ev.line));
                                }
                            }
                        }
                    }
                }
            }
            EventKind::Ordering(_) => {}
        }
    }
}

/// Direct acquisition, or a local single-lock macro (`lock_state!`).
fn direct_or_macro_acquisition(
    ws: &Workspace<'_>,
    summary: &HashMap<FnId, BTreeSet<String>>,
    id: FnId,
    c: &CallSite<'_>,
) -> Option<String> {
    if let Some(lock) = acquisition(ws, id, c) {
        return Some(lock);
    }
    if c.is_macro {
        let targets: Vec<FnId> = ws
            .lookup(c.name)
            .iter()
            .copied()
            .filter(|&t| ws.item(t).is_macro)
            .collect();
        if let [target] = targets.as_slice() {
            let locks = summary.get(target)?;
            if locks.len() == 1 {
                return locks.iter().next().cloned();
            }
        }
    }
    None
}

/// Workspace items a call may land in, by the narrow rules the
/// module docs describe. `Self::f(..)` counts as qualified by the
/// caller's own impl type.
fn lock_callees(ws: &Workspace<'_>, id: FnId, c: &CallSite<'_>) -> Vec<FnId> {
    let candidates = ws.lookup(c.name);
    let caller_ty = ws.item(id).self_ty.as_deref();
    if c.is_macro {
        return candidates
            .iter()
            .copied()
            .filter(|&t| ws.item(t).is_macro)
            .collect();
    }
    let wanted_ty: Option<&str> = if c.is_method {
        if c.recv != Some("self") {
            return Vec::new();
        }
        match caller_ty {
            Some(ty) => Some(ty),
            None => return Vec::new(),
        }
    } else {
        match c.qualifier {
            Some("Self") => match caller_ty {
                Some(ty) => Some(ty),
                None => return Vec::new(),
            },
            other => other,
        }
    };
    candidates
        .iter()
        .copied()
        .filter(|&t| !ws.item(t).is_macro && ws.item(t).self_ty.as_deref() == wanted_ty)
        .collect()
}

/// DFS cycle detection over the acquisition-order graph; each distinct
/// cycle is reported once, at the recorded site of its closing edge.
fn report_cycles(edges: &BTreeMap<(String, String), EdgeSite>, out: &mut Vec<Diagnostic>) {
    let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adjacency.entry(a.as_str()).or_default().push(b.as_str());
        adjacency.entry(b.as_str()).or_default();
    }
    let mut state: HashMap<&str, u8> = HashMap::new(); // 1 = on stack, 2 = done
    let mut stack: Vec<&str> = Vec::new();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();

    fn dfs<'g>(
        node: &'g str,
        adjacency: &BTreeMap<&'g str, Vec<&'g str>>,
        state: &mut HashMap<&'g str, u8>,
        stack: &mut Vec<&'g str>,
        edges: &BTreeMap<(String, String), EdgeSite>,
        seen_cycles: &mut BTreeSet<Vec<String>>,
        out: &mut Vec<Diagnostic>,
    ) {
        state.insert(node, 1);
        stack.push(node);
        for &next in adjacency.get(node).into_iter().flatten() {
            match state.get(next) {
                Some(1) => {
                    let from = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[from..].iter().map(|s| (*s).to_string()).collect();
                    // Normalize rotation so each cycle reports once.
                    let min_idx = cycle
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.cmp(b.1))
                        .map_or(0, |(i, _)| i);
                    cycle.rotate_left(min_idx);
                    if seen_cycles.insert(cycle.clone()) {
                        let site = edges
                            .get(&(node.to_string(), next.to_string()))
                            .cloned()
                            .unwrap_or_else(|| ("<unknown>".to_string(), 0));
                        let mut path = cycle.join(" -> ");
                        path.push_str(" -> ");
                        path.push_str(&cycle[0]);
                        out.push(Diagnostic {
                            file: site.0,
                            line: site.1,
                            rule: "lock-order",
                            message: format!(
                                "lock-order cycle {path}: two threads taking these \
                                 locks in opposite orders can deadlock; pick one \
                                 global order"
                            ),
                        });
                    }
                }
                Some(2) => {}
                _ => dfs(next, adjacency, state, stack, edges, seen_cycles, out),
            }
        }
        stack.pop();
        state.insert(node, 2);
    }

    let nodes: Vec<&str> = adjacency.keys().copied().collect();
    for node in nodes {
        if !state.contains_key(node) {
            dfs(
                node,
                &adjacency,
                &mut state,
                &mut stack,
                edges,
                &mut seen_cycles,
                out,
            );
        }
    }
}
