//! Entropy-flow taint: no publication of harvested bits without a
//! health-test feed on the path.
//!
//! The model is call-graph-level, not value-level: a function
//! *violates* when it can transitively reach both a **source** call
//! (raw-bit harvesting: `sample_pass`, `HarvestSource::harvest_batch`,
//! …) and a **sink** call (publication: `BitQueue::push_block` into the
//! screened pool, `BatchChannel::{send,try_send}`) while reaching no
//! **sanitizer** call (`HealthMonitor::feed_all` /
//! `feed_all_counted` / `feed_bits`). That over-approximates real data
//! flow — any reachable feed call pardons the whole function — but it
//! is exactly the property the pipeline relies on: the only functions
//! that both harvest and publish are the worker loops, and those must
//! feed the health monitor in between. A new code path that harvests
//! and publishes without ever touching the monitor cannot satisfy the
//! predicate and is flagged.
//!
//! Findings are reported at the innermost violating function (callers
//! that only inherit the violation from a callee are suppressed), on
//! the line of the first sink-contributing call.
//!
//! The name lists can be overridden per-workspace via `[entropy-taint]`
//! `sources` / `sinks` / `sanitizers` in `lint_policy.toml`.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::parse::{self, EventKind};
use crate::policy::Policy;
use crate::rules::Diagnostic;
use crate::symbols::{FnId, Workspace};

const DEFAULT_SOURCES: &[&str] = &[
    "sample_pass",
    "harvest_batch",
    "harvest_block",
    "next_batch",
];
const DEFAULT_SINKS: &[&str] = &["push_block", "send", "try_send"];
const DEFAULT_SANITIZERS: &[&str] = &["feed_all", "feed_all_counted", "feed_bits"];

fn configured(policy: &Policy, key: &str, default: &[&str]) -> Vec<String> {
    let given = policy.paths("entropy-taint", key);
    if given.is_empty() {
        default.iter().map(|s| (*s).to_string()).collect()
    } else {
        given.to_vec()
    }
}

/// Runs the taint analysis over the workspace.
pub fn check(ws: &Workspace<'_>, graph: &CallGraph, policy: &Policy, out: &mut Vec<Diagnostic>) {
    let sources = configured(policy, "sources", DEFAULT_SOURCES);
    let sinks = configured(policy, "sinks", DEFAULT_SINKS);
    let sanitizers = configured(policy, "sanitizers", DEFAULT_SANITIZERS);

    // Per-item call sites: (name, line), body order.
    let mut calls: HashMap<FnId, Vec<(String, u32)>> = HashMap::new();
    for id in ws.all_ids() {
        let sites = parse::body_events(ws.file(id), ws.item(id))
            .into_iter()
            .filter_map(|ev| match ev.kind {
                EventKind::Call(c) => Some((c.name.to_string(), ev.line)),
                _ => None,
            })
            .collect();
        calls.insert(id, sites);
    }
    let body_hits = |id: FnId, names: &[String]| -> bool {
        !ws.item(id).test && calls[&id].iter().any(|(n, _)| names.iter().any(|m| m == n))
    };

    let can_src = graph.reaches(ws, |id| body_hits(id, &sources));
    let can_sink = graph.reaches(ws, |id| body_hits(id, &sinks));
    let can_san = graph.reaches(ws, |id| body_hits(id, &sanitizers));

    let violators: HashSet<FnId> = ws
        .all_ids()
        .filter(|id| {
            !ws.item(*id).test
                && can_src.contains(id)
                && can_sink.contains(id)
                && !can_san.contains(id)
        })
        .collect();

    let mut reported: Vec<FnId> = violators
        .iter()
        .copied()
        .filter(|&id| {
            // Innermost-only: skip when a callee already carries it.
            !graph
                .callees_of(id)
                .iter()
                .any(|callee| violators.contains(callee))
        })
        .collect();
    reported.sort_unstable();

    for id in reported {
        let item = ws.item(id);
        let src_names = reachable_names(graph, &calls, id, &sources);
        let sink_names = reachable_names(graph, &calls, id, &sinks);
        let line = sink_line(ws, &calls, id, &sinks, &can_sink).unwrap_or(item.line);
        out.push(Diagnostic {
            file: ws.path(id).to_string(),
            line,
            rule: "entropy-taint",
            message: format!(
                "`{}` can publish harvested bits (source {} -> sink {}) without a \
                 health-test feed on the path; call HealthMonitor::{} before \
                 publication, or waive with `// xtask:allow(entropy-taint) -- reason`",
                item.name,
                join_names(&src_names),
                join_names(&sink_names),
                sanitizers.join("/")
            ),
        });
    }
}

/// Which of `names` appear as call sites in `id`'s downward closure.
fn reachable_names(
    graph: &CallGraph,
    calls: &HashMap<FnId, Vec<(String, u32)>>,
    id: FnId,
    names: &[String],
) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    let mut seen = HashSet::new();
    let mut work = vec![id];
    while let Some(f) = work.pop() {
        if !seen.insert(f) {
            continue;
        }
        for (n, _) in &calls[&f] {
            if names.iter().any(|m| m == n) {
                found.insert(n.clone());
            }
        }
        work.extend(graph.callees_of(f));
    }
    found
}

/// The line of the first call in `id`'s body that contributes to the
/// sink reach: a direct sink call, or a call resolving to an item that
/// can reach a sink.
fn sink_line(
    ws: &Workspace<'_>,
    calls: &HashMap<FnId, Vec<(String, u32)>>,
    id: FnId,
    sinks: &[String],
    can_sink: &HashSet<FnId>,
) -> Option<u32> {
    for (name, line) in &calls[&id] {
        if sinks.iter().any(|s| s == name) {
            return Some(*line);
        }
        if ws.lookup(name).iter().any(|t| can_sink.contains(t)) {
            return Some(*line);
        }
    }
    None
}

fn join_names(names: &BTreeSet<String>) -> String {
    if names.is_empty() {
        "<indirect>".to_string()
    } else {
        names
            .iter()
            .map(|n| format!("`{n}`"))
            .collect::<Vec<_>>()
            .join("/")
    }
}
